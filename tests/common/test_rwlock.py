"""Tests for the reentrant read-write lock."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import LockUpgradeError
from repro.common.rwlock import LockStats, ReentrantRWLock


class TestSingleThread:
    def test_read_context_manager(self):
        lock = ReentrantRWLock("t")
        with lock.read():
            assert lock.held_by_current_thread() == "read"
        assert lock.held_by_current_thread() is None

    def test_write_context_manager(self):
        lock = ReentrantRWLock("t")
        with lock.write():
            assert lock.held_by_current_thread() == "write"
        assert lock.held_by_current_thread() is None

    def test_reentrant_read(self):
        lock = ReentrantRWLock()
        with lock.read():
            with lock.read():
                assert lock.held_by_current_thread() == "read"
            assert lock.held_by_current_thread() == "read"

    def test_reentrant_write(self):
        lock = ReentrantRWLock()
        with lock.write():
            with lock.write():
                assert lock.held_by_current_thread() == "write"
            assert lock.held_by_current_thread() == "write"

    def test_downgrade_read_inside_write(self):
        lock = ReentrantRWLock()
        with lock.write():
            with lock.read():
                assert lock.held_by_current_thread() == "write"
        assert lock.held_by_current_thread() is None

    def test_write_then_release_keeps_inner_read(self):
        lock = ReentrantRWLock()
        lock.acquire_write()
        lock.acquire_read()
        lock.release_write()
        assert lock.held_by_current_thread() == "read"
        lock.release_read()
        assert lock.held_by_current_thread() is None

    def test_upgrade_rejected(self):
        lock = ReentrantRWLock("metadata")
        with lock.read():
            with pytest.raises(LockUpgradeError):
                lock.acquire_write()
        # The read lock must still be released cleanly.
        assert lock.held_by_current_thread() is None

    def test_release_without_acquire_raises(self):
        lock = ReentrantRWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_stats_counted(self):
        lock = ReentrantRWLock()
        with lock.read():
            pass
        with lock.write():
            pass
        assert lock.stats.read_acquired == 1
        assert lock.stats.write_acquired == 1
        assert lock.stats.read_contended == 0
        assert lock.stats.write_contended == 0


class TestMultiThread:
    def test_concurrent_readers_allowed(self):
        lock = ReentrantRWLock()
        inside = threading.Barrier(3, timeout=5.0)

        def reader():
            with lock.read():
                inside.wait()  # all three readers simultaneously inside

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert all(not t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReentrantRWLock()
        events = []
        writer_in = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                time.sleep(0.05)
                events.append("write-done")

        def reader():
            writer_in.wait(timeout=5.0)
            with lock.read():
                events.append("read-done")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join(timeout=5.0)
        tr.join(timeout=5.0)
        assert events == ["write-done", "read-done"]

    def test_writer_preference_blocks_new_readers(self):
        lock = ReentrantRWLock()
        reader_in = threading.Event()
        release_reader = threading.Event()
        order = []

        def long_reader():
            with lock.read():
                reader_in.set()
                release_reader.wait(timeout=5.0)

        def writer():
            with lock.write():
                order.append("writer")

        def late_reader():
            with lock.read():
                order.append("late-reader")

        t1 = threading.Thread(target=long_reader)
        t1.start()
        reader_in.wait(timeout=5.0)
        t2 = threading.Thread(target=writer)
        t2.start()
        time.sleep(0.05)  # let the writer start waiting
        t3 = threading.Thread(target=late_reader)
        t3.start()
        time.sleep(0.05)
        release_reader.set()
        for t in (t1, t2, t3):
            t.join(timeout=5.0)
        assert order[0] == "writer"  # late reader queued behind the writer

    def test_write_mutual_exclusion_counter(self):
        lock = ReentrantRWLock()
        counter = {"value": 0}

        def bump():
            for _ in range(200):
                with lock.write():
                    current = counter["value"]
                    counter["value"] = current + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert counter["value"] == 800

    def test_acquire_read_timeout(self):
        lock = ReentrantRWLock()
        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write():
                acquired.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=writer)
        t.start()
        acquired.wait(timeout=5.0)
        assert lock.acquire_read(timeout=0.05) is False
        release.set()
        t.join(timeout=5.0)

    def test_contention_is_counted(self):
        lock = ReentrantRWLock()
        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write():
                acquired.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=writer)
        t.start()
        acquired.wait(timeout=5.0)

        def reader():
            with lock.read():
                pass

        tr = threading.Thread(target=reader)
        tr.start()
        time.sleep(0.05)
        release.set()
        t.join(timeout=5.0)
        tr.join(timeout=5.0)
        assert lock.stats.read_contended >= 1


class TestTimeoutDeadline:
    """``timeout`` is a total monotonic deadline, not a per-wait budget:
    spurious or irrelevant condition wakeups must not extend it."""

    def _holding_writer(self, lock):
        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write():
                acquired.set()
                release.wait(timeout=10.0)

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        assert acquired.wait(timeout=5.0)
        return release, t

    def _spurious_wakeups(self, lock, stop):
        """Hammer the lock's condition so every wait round wakes up early."""

        def notifier():
            while not stop.is_set():
                with lock._cond:
                    lock._cond.notify_all()
                time.sleep(0.005)

        t = threading.Thread(target=notifier, daemon=True)
        t.start()
        return t

    def test_read_timeout_bounded_despite_wakeups(self):
        lock = ReentrantRWLock()
        release, writer = self._holding_writer(lock)
        stop = threading.Event()
        notifier = self._spurious_wakeups(lock, stop)
        try:
            start = time.monotonic()
            assert lock.acquire_read(timeout=0.1) is False
            elapsed = time.monotonic() - start
            # Pre-fix, each of the ~20 wakeups restarted the full 0.1s wait,
            # stretching the call to ~2s (unboundedly, in general).
            assert elapsed < 1.0
        finally:
            stop.set()
            release.set()
            writer.join(timeout=5.0)
            notifier.join(timeout=5.0)

    def test_write_timeout_bounded_despite_wakeups(self):
        lock = ReentrantRWLock()
        acquired = threading.Event()
        release = threading.Event()

        def reader():
            with lock.read():
                acquired.set()
                release.wait(timeout=10.0)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        assert acquired.wait(timeout=5.0)
        stop = threading.Event()
        notifier = self._spurious_wakeups(lock, stop)
        try:
            start = time.monotonic()
            assert lock.acquire_write(timeout=0.1) is False
            elapsed = time.monotonic() - start
            assert elapsed < 1.0
        finally:
            stop.set()
            release.set()
            t.join(timeout=5.0)
            notifier.join(timeout=5.0)

    def test_timed_out_writer_leaves_lock_usable(self):
        lock = ReentrantRWLock()
        release, writer = self._holding_writer(lock)
        assert lock.acquire_write(timeout=0.05) is False
        release.set()
        writer.join(timeout=5.0)
        with lock.write():
            assert lock.held_by_current_thread() == "write"


class _RecordingObserver:
    """Collects every observer callback as a comparable tuple."""

    def __init__(self):
        self.events = []

    def on_acquire(self, lock, mode, nested, contended):
        self.events.append(("acquire", lock.name, mode, nested, contended))

    def on_release(self, lock, mode, released):
        self.events.append(("release", lock.name, mode, released))


@pytest.fixture
def observer():
    obs = _RecordingObserver()
    ReentrantRWLock.install_observer(obs)
    yield obs
    ReentrantRWLock.uninstall_observer()


class TestObserverHook:
    def test_install_conflicting_observer_raises(self, observer):
        with pytest.raises(RuntimeError):
            ReentrantRWLock.install_observer(_RecordingObserver())
        # Re-installing the same observer is a no-op, not an error.
        ReentrantRWLock.install_observer(observer)

    def test_uninstall_is_idempotent(self):
        ReentrantRWLock.uninstall_observer()
        ReentrantRWLock.uninstall_observer()
        assert ReentrantRWLock.observer is None

    def test_read_acquire_release_events(self, observer):
        lock = ReentrantRWLock("t")
        with lock.read():
            pass
        assert observer.events == [
            ("acquire", "t", "read", False, False),
            ("release", "t", "read", True),
        ]

    def test_nested_read_flagged_and_release_counted_once(self, observer):
        lock = ReentrantRWLock("t")
        with lock.read():
            with lock.read():
                pass
        assert observer.events == [
            ("acquire", "t", "read", False, False),
            ("acquire", "t", "read", True, False),
            ("release", "t", "read", False),  # inner: still held
            ("release", "t", "read", True),   # outer: fully released
        ]

    def test_write_reentrancy_flags(self, observer):
        lock = ReentrantRWLock("t")
        with lock.write():
            with lock.write():
                pass
        assert observer.events == [
            ("acquire", "t", "write", False, False),
            ("acquire", "t", "write", True, False),
            ("release", "t", "write", False),
            ("release", "t", "write", True),
        ]

    def test_downgrade_keeps_thread_in_lock(self, observer):
        lock = ReentrantRWLock("t")
        lock.acquire_write()
        lock.acquire_read()
        lock.release_write()
        # The write release downgrades to the still-held read: not released.
        assert observer.events[-1] == ("release", "t", "write", False)
        lock.release_read()
        assert observer.events[-1] == ("release", "t", "read", True)

    def test_timed_out_acquire_emits_no_event(self, observer):
        lock = ReentrantRWLock("t")
        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write():
                acquired.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=writer)
        t.start()
        acquired.wait(timeout=5.0)
        before = list(observer.events)
        assert lock.acquire_read(timeout=0.05) is False
        assert observer.events == before
        release.set()
        t.join(timeout=5.0)

    def test_contended_flag_reported(self, observer):
        lock = ReentrantRWLock("t")
        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write():
                acquired.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=writer)
        t.start()
        acquired.wait(timeout=5.0)

        def reader():
            with lock.read():
                pass

        tr = threading.Thread(target=reader)
        tr.start()
        time.sleep(0.05)
        release.set()
        t.join(timeout=5.0)
        tr.join(timeout=5.0)
        assert ("acquire", "t", "read", False, True) in observer.events


class TestWaitSeconds:
    def test_uncontended_acquisitions_record_no_wait(self):
        lock = ReentrantRWLock()
        with lock.read():
            pass
        with lock.write():
            pass
        assert lock.stats.read_wait_seconds == 0.0
        assert lock.stats.write_wait_seconds == 0.0

    def test_contended_read_accumulates_wait(self):
        lock = ReentrantRWLock()
        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write():
                acquired.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=writer)
        t.start()
        acquired.wait(timeout=5.0)

        def reader():
            with lock.read():
                pass

        tr = threading.Thread(target=reader)
        tr.start()
        time.sleep(0.05)
        release.set()
        t.join(timeout=5.0)
        tr.join(timeout=5.0)
        assert lock.stats.read_wait_seconds > 0.0

    def test_timed_out_wait_still_counted(self):
        lock = ReentrantRWLock()
        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write():
                acquired.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=writer)
        t.start()
        acquired.wait(timeout=5.0)
        assert lock.acquire_write(timeout=0.05) is False
        assert lock.stats.write_wait_seconds >= 0.04
        release.set()
        t.join(timeout=5.0)


class TestLockStats:
    def test_addition(self):
        a = LockStats(read_acquired=1, write_acquired=2, read_contended=3, write_contended=4)
        b = LockStats(read_acquired=10, write_acquired=20, read_contended=30, write_contended=40)
        total = a + b
        assert total.read_acquired == 11
        assert total.write_acquired == 22
        assert total.read_contended == 33
        assert total.write_contended == 44

    def test_snapshot_is_independent(self):
        a = LockStats(read_acquired=1)
        snap = a.snapshot()
        a.read_acquired = 99
        assert snap.read_acquired == 1

    def test_addition_includes_wait_seconds(self):
        a = LockStats(read_wait_seconds=0.25, write_wait_seconds=1.0)
        b = LockStats(read_wait_seconds=0.75, write_wait_seconds=0.5)
        total = a + b
        assert total.read_wait_seconds == 1.0
        assert total.write_wait_seconds == 1.5

    def test_derived_properties(self):
        stats = LockStats(read_contended=2, write_contended=3,
                          read_wait_seconds=0.25, write_wait_seconds=0.5)
        assert stats.contended == 5
        assert stats.wait_seconds == 0.75

    def test_to_dict_round_trips_every_counter(self):
        stats = LockStats(read_acquired=1, write_acquired=2,
                          read_contended=3, write_contended=4,
                          read_wait_seconds=0.5, write_wait_seconds=0.25)
        assert stats.to_dict() == {
            "read_acquired": 1, "write_acquired": 2,
            "read_contended": 3, "write_contended": 4,
            "read_wait_seconds": 0.5, "write_wait_seconds": 0.25,
        }
