"""Tests for the online statistics building blocks."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.common.stats import (
    Ewma,
    OnlineMean,
    OnlineVariance,
    SlidingWindowStats,
    WindowedCounter,
)


class TestOnlineMean:
    def test_empty_mean_is_zero(self):
        assert OnlineMean().value() == 0.0

    def test_single_value(self):
        mean = OnlineMean()
        mean.add(7.0)
        assert mean.value() == 7.0

    def test_matches_numpy(self):
        values = [1.5, -2.0, 3.25, 10.0, 0.0]
        mean = OnlineMean()
        for v in values:
            mean.add(v)
        assert mean.value() == pytest.approx(np.mean(values))

    def test_reset(self):
        mean = OnlineMean()
        mean.add(5.0)
        mean.reset()
        assert mean.count == 0
        assert mean.value() == 0.0


class TestOnlineVariance:
    def test_fewer_than_two_samples(self):
        var = OnlineVariance()
        assert var.variance() == 0.0
        var.add(3.0)
        assert var.variance() == 0.0

    def test_matches_numpy_population(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        var = OnlineVariance()
        for v in values:
            var.add(v)
        assert var.variance() == pytest.approx(np.var(values))
        assert var.sample_variance() == pytest.approx(np.var(values, ddof=1))
        assert var.stddev() == pytest.approx(np.std(values))

    def test_numerically_stable_for_large_offset(self):
        offset = 1e9
        values = [offset + v for v in (1.0, 2.0, 3.0)]
        var = OnlineVariance()
        for v in values:
            var.add(v)
        assert var.variance() == pytest.approx(np.var(values), rel=1e-6)


class TestEwma:
    def test_first_sample_seeds(self):
        ewma = Ewma(alpha=0.5)
        ewma.add(10.0)
        assert ewma.value() == 10.0
        assert ewma.seeded

    def test_smoothing(self):
        ewma = Ewma(alpha=0.5)
        ewma.add(0.0)
        ewma.add(10.0)
        assert ewma.value() == 5.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_reset(self):
        ewma = Ewma()
        ewma.add(1.0)
        ewma.reset()
        assert not ewma.seeded
        assert ewma.value() == 0.0


class TestWindowedCounter:
    def test_rate_and_reset(self):
        counter = WindowedCounter(start_time=0.0)
        for _ in range(5):
            counter.increment()
        assert counter.rate_and_reset(now=50.0) == pytest.approx(0.1)
        # Window restarted.
        assert counter.count == 0
        assert counter.window_start == 50.0

    def test_zero_elapsed_returns_zero(self):
        counter = WindowedCounter(start_time=10.0)
        counter.increment(3)
        assert counter.rate_and_reset(now=10.0) == 0.0

    def test_peek_does_not_reset(self):
        counter = WindowedCounter(start_time=0.0)
        counter.increment(4)
        assert counter.peek_rate(now=20.0) == pytest.approx(0.2)
        assert counter.count == 4
        assert counter.window_start == 0.0

    def test_increment_by_n(self):
        counter = WindowedCounter()
        counter.increment(10)
        assert counter.count == 10


class TestSlidingWindowStats:
    def test_mean_within_window(self):
        stats = SlidingWindowStats(window=10.0)
        stats.add(0.0, 1.0)
        stats.add(5.0, 3.0)
        assert stats.mean(now=5.0) == pytest.approx(2.0)

    def test_eviction(self):
        stats = SlidingWindowStats(window=10.0)
        stats.add(0.0, 100.0)
        stats.add(20.0, 2.0)
        assert stats.mean(now=20.0) == pytest.approx(2.0)
        assert len(stats) == 1

    def test_empty_mean(self):
        stats = SlidingWindowStats(window=5.0)
        assert stats.mean() == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowStats(window=0.0)
