"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis import pytest_lockrecord as _lockrecord
from repro.common.clock import VirtualClock
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import VirtualTimeScheduler

# ``pytest_plugins`` outside the rootdir conftest is an error in modern
# pytest, so the --record-locks plugin's hooks are delegated explicitly.


def pytest_addoption(parser):
    _lockrecord.pytest_addoption(parser)


def pytest_configure(config):
    _lockrecord.pytest_configure(config)


def pytest_sessionfinish(session, exitstatus):
    _lockrecord.pytest_sessionfinish(session, exitstatus)


class RegistryOwner:
    """Minimal owner object for stand-alone registry tests.

    Provides the wiring attributes inter-node dependency resolution expects.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.metadata: MetadataRegistry | None = None
        self.upstream_nodes: list = []
        self.downstream_nodes: list = []
        self._modules: dict = {}

    def get_module(self, name: str):
        return self._modules[name]

    def add_module(self, name: str, module) -> None:
        self._modules[name] = module

    def __repr__(self) -> str:
        return f"RegistryOwner({self.name!r})"


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def system(clock: VirtualClock) -> MetadataSystem:
    return MetadataSystem(clock, VirtualTimeScheduler(clock))


@pytest.fixture
def make_owner(system: MetadataSystem):
    """Factory creating owners with attached registries."""

    def factory(name: str = "node") -> RegistryOwner:
        owner = RegistryOwner(name)
        owner.metadata = MetadataRegistry(owner, system)
        return owner

    return factory
