"""Tests for post-hoc installation of cost-model metadata."""

from __future__ import annotations

import pytest

from repro.costmodel.install import estimated_vs_measured, install_estimates
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.filter import Filter
from repro.operators.map import Map
from repro.operators.union import Union
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, SequentialValues, StreamDriver


def plan_with_filter():
    graph = QueryGraph(default_metadata_period=20.0)
    source = graph.add(Source("s", Schema(("x",))))
    fil = graph.add(Filter("f", lambda e: e.field("x") % 2 == 0))
    mapper = graph.add(Map("m", lambda p: p))
    union = graph.add(Union("u"))
    sink = graph.add(Sink("out"))
    graph.connect(source, fil)
    graph.connect(fil, mapper)
    graph.connect(mapper, union)
    graph.connect(union, sink)
    graph.freeze()
    return graph, source, fil, mapper, union, sink


class TestInstallEstimates:
    def test_adds_estimates_to_stateless_operators(self):
        graph, source, fil, mapper, union, sink = plan_with_filter()
        added = install_estimates(graph)
        assert added == 3  # filter, map, union
        for node in (fil, mapper, union):
            assert md.EST_OUTPUT_RATE in node.metadata.available_keys()

    def test_idempotent(self):
        graph, *_ = plan_with_filter()
        install_estimates(graph)
        assert install_estimates(graph) == 0

    def test_filter_estimate_uses_selectivity(self):
        graph, source, fil, mapper, union, sink = plan_with_filter()
        install_estimates(graph)
        subscription = union.metadata.subscribe(md.EST_OUTPUT_RATE)
        executor = SimulationExecutor(
            graph, [StreamDriver(source, ConstantRate(1.0), SequentialValues())]
        )
        executor.run_until(200.0)
        # Input rate 1.0, filter selectivity 0.5 -> estimate ~0.5 through
        # the map and union pass-throughs.
        assert subscription.get() == pytest.approx(0.5, rel=0.3)
        subscription.cancel()


class TestEstimatedVsMeasured:
    def test_compares_and_reports_error(self):
        graph, source, fil, mapper, union, sink = plan_with_filter()
        install_estimates(graph)
        # Keep both items included during the run so they carry warm values
        # when compared (a cold post-run subscription would read zeros).
        est = fil.metadata.subscribe(md.EST_OUTPUT_RATE)
        meas = fil.metadata.subscribe(md.OUTPUT_RATE)
        executor = SimulationExecutor(
            graph, [StreamDriver(source, ConstantRate(1.0), SequentialValues())]
        )
        executor.run_until(200.0)
        report = estimated_vs_measured(fil, md.EST_OUTPUT_RATE, md.OUTPUT_RATE)
        assert set(report) == {"estimated", "measured", "relative_error"}
        assert report["estimated"] > 0
        assert report["measured"] == pytest.approx(0.5, rel=0.2)
        assert report["relative_error"] < 0.5
        est.cancel()
        meas.cancel()

    def test_temporary_subscriptions_cleaned_up(self):
        graph, source, fil, mapper, union, sink = plan_with_filter()
        install_estimates(graph)
        estimated_vs_measured(fil, md.EST_OUTPUT_RATE, md.OUTPUT_RATE)
        assert fil.metadata.included_keys() == []

    def test_zero_measured_zero_estimated(self):
        graph, source, fil, mapper, union, sink = plan_with_filter()
        install_estimates(graph)
        report = estimated_vs_measured(fil, md.EST_OUTPUT_RATE, md.OUTPUT_RATE)
        assert report["relative_error"] == 0.0
