"""Tests for the analytical cost model."""

from __future__ import annotations

import pytest

from repro.common.errors import CostModelError
from repro.costmodel import model


class TestWindowEstimates:
    def test_validity_equals_window_size(self):
        assert model.window_validity(100.0) == 100.0

    def test_state_elements(self):
        assert model.window_state_elements(rate=0.5, validity=100.0) == 50.0

    def test_memory(self):
        assert model.window_memory(0.5, 100.0, element_size=16) == 800.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(CostModelError):
            model.window_validity(-1.0)
        with pytest.raises(CostModelError):
            model.window_memory(-0.1, 10.0, 8)


class TestJoinEstimates:
    def test_probe_rate_symmetric_case(self):
        # r=0.1 each, v=100 each, list areas: 0.1*10 + 0.1*10 = 2.
        assert model.join_probe_rate(0.1, 0.1, 100.0, 100.0) == pytest.approx(2.0)

    def test_probe_rate_hash_fraction(self):
        full = model.join_probe_rate(0.1, 0.1, 100.0, 100.0)
        hashed = model.join_probe_rate(0.1, 0.1, 100.0, 100.0, f0=0.1, f1=0.1)
        assert hashed == pytest.approx(full * 0.1)

    def test_cpu_usage_includes_base_cost(self):
        cpu = model.join_cpu_usage(0.1, 0.1, 100.0, 100.0,
                                   predicate_cost=1.0, base_cost=1.0)
        assert cpu == pytest.approx(2.0 + 0.2)

    def test_cpu_scales_linearly_with_window(self):
        small = model.join_cpu_usage(0.1, 0.1, 50.0, 50.0, 1.0, base_cost=0.0)
        large = model.join_cpu_usage(0.1, 0.1, 100.0, 100.0, 1.0, base_cost=0.0)
        assert large == pytest.approx(2 * small)

    def test_memory(self):
        mem = model.join_memory(0.1, 0.2, 100.0, 50.0, size0=10, size1=20)
        assert mem == pytest.approx(0.1 * 100 * 10 + 0.2 * 50 * 20)

    def test_output_rate(self):
        rate = model.join_output_rate(0.1, 0.1, 100.0, 100.0, selectivity=0.5)
        assert rate == pytest.approx(1.0)

    def test_zero_rate_zero_everything(self):
        assert model.join_cpu_usage(0.0, 0.0, 100.0, 100.0, 1.0) == 0.0
        assert model.join_memory(0.0, 0.0, 10.0, 10.0, 8, 8) == 0.0


class TestOtherEstimates:
    def test_filter_output_rate(self):
        assert model.filter_output_rate(2.0, 0.25) == 0.5

    def test_queue_growth_rate(self):
        assert model.queue_growth_rate(2.0, 0.5) == 1.5
        assert model.queue_growth_rate(0.5, 2.0) == 0.0
