"""Tests for the fluent query builder."""

from __future__ import annotations

import pytest

from repro.common.errors import GraphError
from repro.graph.builder import QueryBuilder
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.metadata import catalogue as md
from repro.operators.filter import Filter
from repro.operators.join import SlidingWindowJoin
from repro.operators.window import TimeWindow
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, StreamDriver, UniformValues


class TestStaticConstruction:
    def test_linear_chain(self):
        graph = QueryGraph()
        qb = QueryBuilder(graph)
        sink = (qb.source("s", Schema(("x",)))
                  .filter(lambda e: e.field("x") > 0)
                  .map(lambda p: {"x": p["x"] * 2})
                  .sink("out"))
        qb.apply()
        graph.freeze()
        names = [node.name for node in graph.topological_order()]
        assert names[0] == "s"
        assert names[-1] == "out"
        assert sink is graph.node("out")

    def test_join_of_two_chains(self):
        graph = QueryGraph()
        qb = QueryBuilder(graph)
        left = qb.source("l", Schema(("k",))).window(100.0)
        right = qb.source("r", Schema(("k",))).window(100.0)
        left.join(right, key=lambda e: e.field("k")).sink("out")
        qb.apply()
        graph.freeze()
        joins = [n for n in graph.nodes() if isinstance(n, SlidingWindowJoin)]
        assert len(joins) == 1
        assert joins[0].impl == "hash"  # inferred from the key
        assert [n.name for n in joins[0].upstream_nodes][0].startswith("q_window")

    def test_union(self):
        graph = QueryGraph()
        qb = QueryBuilder(graph)
        a = qb.source("a", Schema(("x",)))
        b = qb.source("b", Schema(("x",)))
        c = qb.source("c", Schema(("x",)))
        a.union(b, c).sink("out")
        qb.apply()
        graph.freeze()
        union = next(n for n in graph.nodes() if n.name.startswith("q_union"))
        assert len(union.upstream_nodes) == 3

    def test_auto_names_are_unique(self):
        graph = QueryGraph()
        qb = QueryBuilder(graph)
        stage = qb.source("s", Schema(("x",)))
        stage = stage.filter(lambda e: True).filter(lambda e: True)
        stage.sink()
        qb.apply()
        names = [node.name for node in graph.nodes()]
        assert len(names) == len(set(names))

    def test_explicit_names_respected(self):
        graph = QueryGraph()
        qb = QueryBuilder(graph)
        qb.source("s", Schema(("x",))).filter(lambda e: True, name="only_pos") \
          .sink("results")
        qb.apply()
        assert isinstance(graph.node("only_pos"), Filter)

    def test_apply_twice_rejected(self):
        graph = QueryGraph()
        qb = QueryBuilder(graph)
        qb.source("s", Schema(("x",))).sink("out")
        qb.apply()
        with pytest.raises(GraphError):
            qb.apply()

    def test_cross_builder_join_rejected(self):
        graph = QueryGraph()
        qb1, qb2 = QueryBuilder(graph), QueryBuilder(graph, prefix="p")
        left = qb1.source("l", Schema(("k",))).window(10.0)
        right = qb2.source("r", Schema(("k",))).window(10.0)
        with pytest.raises(GraphError):
            left.join(right)

    def test_all_operator_kinds(self):
        graph = QueryGraph()
        qb = QueryBuilder(graph)
        (qb.source("s", Schema(("k", "x")))
           .distinct(lambda e: e.field("k"), horizon=50.0)
           .project(["x"])
           .window(100.0)
           .count_window(5)
           .aggregate("x", "sum")
           .sink("out"))
        qb.apply()
        graph.freeze()
        assert len(graph.nodes()) == 7

    def test_built_plan_runs(self):
        graph = QueryGraph()
        qb = QueryBuilder(graph)
        results = []
        source_stage = qb.source("s", Schema(("x",)))
        source_stage.filter(lambda e: e.field("x") % 2 == 0) \
                    .sink("out", callback=lambda e: results.append(e.field("x")))
        qb.apply()
        source = graph.node("s")
        executor = SimulationExecutor(graph, [
            StreamDriver(source, ConstantRate(1.0), UniformValues("x", 0, 100),
                         seed=3),
        ])
        executor.run_until(100.0)
        assert results
        assert all(x % 2 == 0 for x in results)


class TestRuntimeInstallation:
    def test_apply_on_frozen_graph_installs(self):
        graph = QueryGraph()
        qb0 = QueryBuilder(graph, prefix="base")
        shared_stage = qb0.source("s", Schema(("x",)))
        shared_stage.sink("q1")
        qb0.apply()
        graph.freeze()

        # Build a second query at runtime, tapping the live source.
        qb1 = QueryBuilder(graph, prefix="rt")
        qb1.from_node(graph.node("s")).filter(lambda e: True).sink("q2")
        installed = qb1.apply()
        assert {n.name for n in installed} >= {"q2"}
        assert graph.node("q2").metadata is not None

    def test_from_node_of_sink_rejected(self):
        graph = QueryGraph()
        qb = QueryBuilder(graph)
        sink = qb.source("s", Schema(("x",))).sink("out")
        with pytest.raises(GraphError):
            qb.from_node(sink)

    def test_installed_query_metadata_live(self):
        graph = QueryGraph(default_metadata_period=25.0)
        qb0 = QueryBuilder(graph)
        qb0.source("s", Schema(("x",))).sink("q1")
        qb0.apply()
        graph.freeze()
        qb1 = QueryBuilder(graph, prefix="rt")
        qb1.from_node(graph.node("s")) \
           .filter(lambda e: e.field("x") < 50, name="half") \
           .sink("q2")
        qb1.apply()
        with graph.node("half").metadata.subscribe(md.SELECTIVITY) as sub:
            assert sub.get() == 0.0
