"""Tests for stream elements and schemas."""

from __future__ import annotations

import math

import pytest

from repro.common.errors import SchemaError
from repro.graph.element import Schema, StreamElement


class TestSchema:
    def test_basic(self):
        schema = Schema(("a", "b"), element_size=32)
        assert len(schema) == 2
        assert schema.element_size == 32

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a", "a"))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a",), element_size=0)

    def test_concat_disambiguates_and_sums_sizes(self):
        left = Schema(("k", "x"), element_size=10)
        right = Schema(("k", "y"), element_size=20)
        joined = left.concat(right)
        assert joined.fields == ("k", "x", "k_r", "y")
        assert joined.element_size == 30

    def test_project_keeps_order_and_scales_size(self):
        schema = Schema(("a", "b", "c", "d"), element_size=40)
        projected = schema.project(["c", "a"])
        assert projected.fields == ("c", "a")
        assert projected.element_size == 20

    def test_project_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a",)).project(["z"])


class TestStreamElement:
    def test_defaults_to_infinite_validity(self):
        element = StreamElement({"x": 1}, timestamp=5.0)
        assert math.isinf(element.expiry)
        assert math.isinf(element.validity)
        assert not element.is_expired(1e12)

    def test_with_expiry(self):
        element = StreamElement({"x": 1}, timestamp=5.0)
        windowed = element.with_expiry(15.0)
        assert windowed.validity == 10.0
        assert windowed.payload is element.payload
        assert math.isinf(element.expiry)  # original untouched

    def test_is_expired_boundary(self):
        element = StreamElement({}, timestamp=0.0, expiry=10.0)
        assert not element.is_expired(9.999)
        assert element.is_expired(10.0)

    def test_field_access(self):
        element = StreamElement({"x": 1}, 0.0)
        assert element.field("x") == 1
        with pytest.raises(SchemaError):
            element.field("missing")

    def test_field_on_non_mapping_raises(self):
        element = StreamElement(42, 0.0)
        with pytest.raises(SchemaError):
            element.field("x")
