"""Tests for query-graph construction and validation."""

from __future__ import annotations

import pytest

from repro.common.clock import SystemClock, VirtualClock
from repro.common.errors import GraphError, WiringError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.operators.filter import Filter
from repro.operators.union import Union


def simple_graph():
    graph = QueryGraph()
    source = graph.add(Source("s", Schema(("x",))))
    fil = graph.add(Filter("f", lambda e: True))
    sink = graph.add(Sink("out"))
    graph.connect(source, fil)
    graph.connect(fil, sink)
    return graph, source, fil, sink


class TestConstruction:
    def test_duplicate_name_rejected(self):
        graph = QueryGraph()
        graph.add(Source("s", Schema(("x",))))
        with pytest.raises(GraphError):
            graph.add(Source("s", Schema(("y",))))

    def test_node_cannot_join_two_graphs(self):
        g1, g2 = QueryGraph(), QueryGraph()
        source = g1.add(Source("s", Schema(("x",))))
        with pytest.raises(GraphError):
            g2.add(source)

    def test_connect_unknown_node_rejected(self):
        graph = QueryGraph()
        source = graph.add(Source("s", Schema(("x",))))
        stranger = Sink("stranger")
        with pytest.raises(WiringError):
            graph.connect(source, stranger)

    def test_connect_into_source_rejected(self):
        graph = QueryGraph()
        s1 = graph.add(Source("s1", Schema(("x",))))
        s2 = graph.add(Source("s2", Schema(("x",))))
        with pytest.raises(WiringError):
            graph.connect(s1, s2)

    def test_connect_out_of_sink_rejected(self):
        graph = QueryGraph()
        source = graph.add(Source("s", Schema(("x",))))
        sink = graph.add(Sink("k"))
        graph.connect(source, sink)
        fil = graph.add(Filter("f", lambda e: True))
        with pytest.raises(WiringError):
            graph.connect(sink, fil)

    def test_arity_enforced_on_connect(self):
        graph = QueryGraph()
        s1 = graph.add(Source("s1", Schema(("x",))))
        s2 = graph.add(Source("s2", Schema(("x",))))
        fil = graph.add(Filter("f", lambda e: True))
        graph.connect(s1, fil)
        with pytest.raises(WiringError):
            graph.connect(s2, fil)

    def test_nonvirtual_clock_requires_scheduler(self):
        with pytest.raises(GraphError):
            QueryGraph(clock=SystemClock())


class TestFreeze:
    def test_freeze_attaches_registries(self):
        graph, source, fil, sink = simple_graph()
        assert source.metadata is None
        graph.freeze()
        assert source.metadata is not None
        assert fil.metadata is not None
        assert sink.metadata is not None

    def test_freeze_twice_rejected(self):
        graph, *_ = simple_graph()
        graph.freeze()
        with pytest.raises(GraphError):
            graph.freeze()

    def test_add_after_freeze_rejected(self):
        graph, *_ = simple_graph()
        graph.freeze()
        with pytest.raises(GraphError):
            graph.add(Source("late", Schema(("x",))))

    def test_connect_after_freeze_rejected(self):
        graph, source, fil, sink = simple_graph()
        graph.freeze()
        with pytest.raises(GraphError):
            graph.connect(source, fil)

    def test_missing_input_rejected(self):
        graph = QueryGraph()
        graph.add(Source("s", Schema(("x",))))
        fil = graph.add(Filter("f", lambda e: True))
        sink = graph.add(Sink("out"))
        graph.connect(fil, sink)  # filter has no input
        with pytest.raises(WiringError):
            graph.freeze()

    def test_dangling_operator_rejected(self):
        graph = QueryGraph()
        source = graph.add(Source("s", Schema(("x",))))
        fil = graph.add(Filter("f", lambda e: True))
        graph.connect(source, fil)  # filter has no consumer
        with pytest.raises(WiringError):
            graph.freeze()

    def test_variadic_needs_at_least_one_input(self):
        graph = QueryGraph()
        union = graph.add(Union("u"))
        sink = graph.add(Sink("out"))
        graph.connect(union, sink)
        with pytest.raises(WiringError):
            graph.freeze()

    def test_subscribe_before_freeze_rejected(self):
        from repro.metadata import catalogue as md

        graph, source, *_ = simple_graph()
        with pytest.raises(GraphError):
            graph.subscribe(source, md.OUTPUT_RATE)


class TestTopology:
    def test_topological_order(self):
        graph, source, fil, sink = simple_graph()
        order = [node.name for node in graph.topological_order()]
        assert order == ["s", "f", "out"]

    def test_subquery_sharing_fanout(self):
        graph = QueryGraph()
        source = graph.add(Source("s", Schema(("x",))))
        fil = graph.add(Filter("f", lambda e: True))
        sink1 = graph.add(Sink("q1"))
        sink2 = graph.add(Sink("q2"))
        graph.connect(source, fil)
        graph.connect(fil, sink1)
        graph.connect(fil, sink2)
        graph.freeze()
        assert len(fil.output_queues) == 2
        assert set(n.name for n in fil.downstream_nodes) == {"q1", "q2"}

    def test_accessors(self):
        graph, source, fil, sink = simple_graph()
        assert graph.sources() == [source]
        assert graph.operators() == [fil]
        assert graph.sinks() == [sink]
        assert graph.node("f") is fil
        with pytest.raises(GraphError):
            graph.node("ghost")
        assert len(graph.queues()) == 2

    def test_total_pending_elements(self):
        graph, source, fil, sink = simple_graph()
        graph.freeze()
        source.produce({"x": 1}, 0.0)
        assert graph.total_pending_elements() == 1
        fil.step()
        assert graph.total_pending_elements() == 1  # moved to sink queue
        sink.step()
        assert graph.total_pending_elements() == 0
