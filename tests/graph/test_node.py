"""Tests for node-level standard metadata (Figure 2's taxonomy)."""

from __future__ import annotations

import pytest

from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.filter import Filter


@pytest.fixture
def pipeline():
    graph = QueryGraph(default_metadata_period=50.0)
    source = graph.add(Source("s", Schema(("x",), element_size=24)))
    fil = graph.add(Filter("f", lambda e: e.field("x") % 2 == 0))
    sink = graph.add(Sink("out", qos={"max_latency": 10}, priority=3))
    graph.connect(source, fil)
    graph.connect(fil, sink)
    graph.freeze()
    return graph, source, fil, sink


def feed(graph, source, count, gap=10.0):
    for i in range(count):
        graph.clock.advance_by(gap)
        source.produce({"x": i}, graph.clock.now())
        while any(n.step() for n in (graph.operators() + graph.sinks())):
            pass


class TestSourceMetadata:
    def test_static_schema_and_size(self, pipeline):
        graph, source, fil, sink = pipeline
        with source.metadata.subscribe(md.SCHEMA) as s:
            assert s.get().fields == ("x",)
        with source.metadata.subscribe(md.ELEMENT_SIZE) as s:
            assert s.get() == 24

    def test_measured_output_rate(self, pipeline):
        graph, source, fil, sink = pipeline
        subscription = source.metadata.subscribe(md.OUTPUT_RATE)
        feed(graph, source, 10, gap=10.0)  # 0.1 elements per unit
        assert subscription.get() == pytest.approx(0.1, rel=0.05)
        subscription.cancel()

    def test_value_distribution(self, pipeline):
        graph, source, fil, sink = pipeline
        subscription = source.metadata.subscribe(md.VALUE_DISTRIBUTION)
        feed(graph, source, 10, gap=10.0)
        snapshot = subscription.get()
        assert snapshot["count"] > 0
        assert snapshot["min"] >= 0
        subscription.cancel()

    def test_est_output_rate_tracks_measured(self, pipeline):
        graph, source, fil, sink = pipeline
        subscription = source.metadata.subscribe(md.EST_OUTPUT_RATE)
        feed(graph, source, 10, gap=10.0)
        assert subscription.get() == pytest.approx(0.1, rel=0.05)
        subscription.cancel()


class TestOperatorMetadata:
    def test_selectivity_measured(self, pipeline):
        graph, source, fil, sink = pipeline
        subscription = fil.metadata.subscribe(md.SELECTIVITY)
        feed(graph, source, 20, gap=10.0)  # x%2==0 passes half
        assert subscription.get() == pytest.approx(0.5, abs=0.1)
        subscription.cancel()

    def test_input_rate_per_port(self, pipeline):
        graph, source, fil, sink = pipeline
        subscription = fil.metadata.subscribe(md.INPUT_RATE.q(0))
        feed(graph, source, 10, gap=10.0)
        assert subscription.get() == pytest.approx(0.1, rel=0.05)
        subscription.cancel()

    def test_avg_input_rate_is_triggered_dependent(self, pipeline):
        graph, source, fil, sink = pipeline
        subscription = fil.metadata.subscribe(md.AVG_INPUT_RATE.q(0))
        # Auto-included dependency (Section 2.4).
        assert fil.metadata.is_included(md.INPUT_RATE.q(0))
        feed(graph, source, 10, gap=10.0)
        # The average includes the zero-valued seed sample taken at
        # inclusion, so it sits below the true rate of 0.1.
        assert 0.05 <= subscription.get() <= 0.1
        subscription.cancel()
        assert not fil.metadata.is_included(md.INPUT_RATE.q(0))

    def test_io_ratio(self, pipeline):
        graph, source, fil, sink = pipeline
        subscription = fil.metadata.subscribe(md.INPUT_OUTPUT_RATIO)
        feed(graph, source, 20, gap=10.0)
        assert subscription.get() == pytest.approx(0.5, abs=0.2)
        subscription.cancel()

    def test_cpu_usage_measured(self, pipeline):
        graph, source, fil, sink = pipeline
        subscription = fil.metadata.subscribe(md.CPU_USAGE)
        feed(graph, source, 20, gap=10.0)
        # One element per 10 units at unit cost -> 0.1 cost/time.
        assert subscription.get() == pytest.approx(0.1, rel=0.1)
        subscription.cancel()

    def test_queue_length_on_demand(self, pipeline):
        graph, source, fil, sink = pipeline
        subscription = fil.metadata.subscribe(md.QUEUE_LENGTH)
        source.produce({"x": 1}, graph.clock.now())
        source.produce({"x": 2}, graph.clock.now())
        assert subscription.get() == 2
        fil.step()
        assert subscription.get() == 1
        subscription.cancel()

    def test_stateless_memory_usage_zero(self, pipeline):
        graph, source, fil, sink = pipeline
        with fil.metadata.subscribe(md.MEMORY_USAGE) as s:
            assert s.get() == 0

    def test_implementation_type(self, pipeline):
        graph, source, fil, sink = pipeline
        with fil.metadata.subscribe(md.IMPLEMENTATION_TYPE) as s:
            assert s.get() == "Filter"


class TestSinkMetadata:
    def test_qos_and_priority(self, pipeline):
        graph, source, fil, sink = pipeline
        with sink.metadata.subscribe(md.QOS_SPEC) as s:
            assert s.get() == {"max_latency": 10}
        with sink.metadata.subscribe(md.PRIORITY) as s:
            assert s.get() == 3

    def test_sink_receives_and_counts(self, pipeline):
        graph, source, fil, sink = pipeline
        feed(graph, source, 10, gap=10.0)
        assert sink.received == 5  # half filtered out

    def test_sink_callback(self):
        graph = QueryGraph()
        source = graph.add(Source("s", Schema(("x",))))
        seen = []
        sink = graph.add(Sink("out", callback=lambda e: seen.append(e.field("x"))))
        graph.connect(source, sink)
        graph.freeze()
        source.produce({"x": 42}, 0.0)
        sink.step()
        assert seen == [42]

    def test_reuse_frequency(self):
        graph = QueryGraph()
        source = graph.add(Source("s", Schema(("x",))))
        fil = graph.add(Filter("f", lambda e: True))
        sink1, sink2 = graph.add(Sink("q1")), graph.add(Sink("q2"))
        graph.connect(source, fil)
        graph.connect(fil, sink1)
        graph.connect(fil, sink2)
        graph.freeze()
        with sink1.metadata.subscribe(md.REUSE_FREQUENCY) as s:
            assert s.get() == 2


class TestEventNotification:
    def test_notify_state_changed_publishes_event(self, pipeline):
        graph, source, fil, sink = pipeline
        seen = []
        fil.state_changed.listen(seen.append)
        fil.notify_state_changed(md.STATE_SIZE)
        assert seen == [md.STATE_SIZE]

    def test_metadata_period_validation(self, pipeline):
        graph, source, fil, sink = pipeline
        from repro.common.errors import GraphError

        with pytest.raises(GraphError):
            fil.metadata_period = 0.0
