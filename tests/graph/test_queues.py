"""Tests for inter-operator queues."""

from __future__ import annotations

import pytest

from repro.common.errors import QueueClosedError
from repro.graph.element import StreamElement
from repro.graph.queues import StreamQueue


class _Node:
    def __init__(self, name):
        self.name = name


def make_queue(capacity=None):
    return StreamQueue(_Node("p"), _Node("c"), port=0, capacity=capacity)


def element(i):
    return StreamElement({"i": i}, float(i))


class TestFifo:
    def test_fifo_order(self):
        queue = make_queue()
        for i in range(5):
            queue.push(element(i))
        popped = [queue.pop().field("i") for _ in range(5)]
        assert popped == [0, 1, 2, 3, 4]

    def test_pop_empty_returns_none(self):
        assert make_queue().pop() is None

    def test_peek_does_not_remove(self):
        queue = make_queue()
        queue.push(element(1))
        assert queue.peek().field("i") == 1
        assert len(queue) == 1

    def test_len_and_bool(self):
        queue = make_queue()
        assert not queue
        queue.push(element(1))
        assert queue
        assert len(queue) == 1


class TestAccounting:
    def test_enqueue_dequeue_counts(self):
        queue = make_queue()
        queue.push(element(1))
        queue.push(element(2))
        queue.pop()
        assert queue.enqueued == 2
        assert queue.dequeued == 1

    def test_peak_length(self):
        queue = make_queue()
        for i in range(3):
            queue.push(element(i))
        queue.pop()
        queue.push(element(9))
        assert queue.peak_length == 3


class TestCapacity:
    def test_drop_at_capacity(self):
        queue = make_queue(capacity=2)
        assert queue.push(element(1))
        assert queue.push(element(2))
        assert not queue.push(element(3))
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_queue(capacity=0)


class TestClose:
    def test_push_after_close_raises(self):
        queue = make_queue()
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.push(element(1))
