"""End-to-end adaptivity: all Section 1 consumers cooperating on one plan.

The paper's vision is a system where scheduler, resource manager, load
shedder and monitors all feed off the same shared metadata.  This test wires
them together on a join plan under a load surge and checks that

* the consumers share handlers instead of duplicating maintenance,
* each consumer reacts to the surge through its own metadata view, and
* tearing everything down leaves zero handlers.
"""

from __future__ import annotations

import pytest

from repro.adaptation.load_shedder import LoadShedder, Shedder
from repro.adaptation.profiler import MetadataProfiler
from repro.adaptation.qos_monitor import QoSMonitor
from repro.adaptation.resource_manager import AdaptiveResourceManager
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.join import SlidingWindowJoin
from repro.operators.window import TimeWindow
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ArrivalProcess, StreamDriver, UniformValues


class SurgeRate(ArrivalProcess):
    """0.2/u normally; 1.2/u during the surge window [1000, 3000)."""

    def next_gap(self, now, rng):
        return 1.0 / (1.2 if 1000.0 <= now < 3000.0 else 0.2)

    def mean_rate(self):
        return 0.4


@pytest.fixture
def adaptive_system():
    graph = QueryGraph(default_metadata_period=50.0)
    s0 = graph.add(Source("s0", Schema(("k",), element_size=64)))
    s1 = graph.add(Source("s1", Schema(("k",), element_size=64)))
    shed0 = graph.add(Shedder("shed0", seed=1))
    shed1 = graph.add(Shedder("shed1", seed=2))
    w0 = graph.add(TimeWindow("w0", 150.0))
    w1 = graph.add(TimeWindow("w1", 150.0))
    join = graph.add(SlidingWindowJoin("join", impl="hash",
                                       key_fn=lambda e: e.field("k")))
    sink = graph.add(Sink("out", qos={"max_latency": 50.0}))
    for a, b in ((s0, shed0), (s1, shed1), (shed0, w0), (shed1, w1),
                 (w0, join), (w1, join), (join, sink)):
        graph.connect(a, b)
    graph.freeze()

    manager = AdaptiveResourceManager(graph, memory_budget=15_000.0)
    shedder = LoadShedder([shed0, shed1], [join], cpu_bound=3.0, step=0.1)
    monitor = QoSMonitor(graph)
    profiler = MetadataProfiler()
    profiler.watch(join, md.EST_MEMORY_USAGE, label="est_mem")
    profiler.watch(join, md.CPU_USAGE, label="cpu")

    drivers = [
        StreamDriver(s0, SurgeRate(), UniformValues("k", 0, 12), seed=3),
        StreamDriver(s1, SurgeRate(), UniformValues("k", 0, 12), seed=4),
    ]
    executor = SimulationExecutor(graph, drivers, service_capacity=40.0)
    executor.every(100.0, manager.check)
    executor.every(100.0, shedder.check)
    executor.every(100.0, monitor.check)
    executor.every(100.0, profiler.sample)
    consumers = (manager, shedder, monitor, profiler)
    return graph, executor, join, consumers


class TestCooperatingConsumers:
    def test_consumers_share_handlers(self, adaptive_system):
        graph, executor, join, consumers = adaptive_system
        # Resource manager and profiler both use est-memory: one handler.
        handler = join.metadata.handler(md.EST_MEMORY_USAGE)
        assert handler.consumer_count == 2

    def test_surge_triggers_every_adaptation(self, adaptive_system):
        graph, executor, join, consumers = adaptive_system
        manager, shedder, monitor, profiler = consumers
        executor.run_until(5000.0)

        # The resource manager shrank the windows during the surge.
        assert manager.shrink_count >= 1
        # The load shedder raised the drop probability at some point.
        assert any(d.drop_probability > 0 for d in shedder.decisions)
        # The profiler recorded the whole story.
        assert len(profiler.series["est_mem"]) == 50
        surge_mem = max(profiler.series["est_mem"].numeric_values())
        calm_mem = profiler.series["est_mem"].numeric_values()[0]
        assert surge_mem > calm_mem

    def test_teardown_leaves_nothing(self, adaptive_system):
        graph, executor, join, consumers = adaptive_system
        manager, shedder, monitor, profiler = consumers
        executor.run_until(1500.0)
        manager.close()
        shedder.close()
        monitor.close()
        profiler.close()
        assert graph.metadata_system.included_handler_count == 0
