"""Count-based windows feeding a join: retroactive expiry must propagate.

A :class:`CountWindow` stamps an element's expiry only when it is displaced
by the N-th later element; the join's sweep areas hold the *same* element
objects, so the stamp must make old state invisible to later probes.
"""

from __future__ import annotations

from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.operators.join import SlidingWindowJoin
from repro.operators.window import CountWindow


def build(count=2):
    graph = QueryGraph()
    s0 = graph.add(Source("s0", Schema(("k",))))
    s1 = graph.add(Source("s1", Schema(("k",))))
    w0 = graph.add(CountWindow("w0", count))
    w1 = graph.add(CountWindow("w1", count))
    join = graph.add(SlidingWindowJoin("join", key_fn=lambda e: e.field("k")))
    results = []
    sink = graph.add(Sink("out", callback=lambda e: results.append(e.payload)))
    for a, b in ((s0, w0), (s1, w1), (w0, join), (w1, join), (join, sink)):
        graph.connect(a, b)
    graph.freeze()
    return graph, s0, s1, join, results


def drain(graph):
    nodes = graph.operators() + graph.sinks()
    while any(node.step() for node in nodes):
        pass


class TestCountWindowJoin:
    def test_live_elements_join(self):
        graph, s0, s1, join, results = build(count=2)
        s0.produce({"k": 1}, 0.0)
        drain(graph)
        s1.produce({"k": 1}, 1.0)
        drain(graph)
        assert len(results) == 1

    def test_displaced_element_no_longer_matches(self):
        graph, s0, s1, join, results = build(count=2)
        s0.produce({"k": 1}, 0.0)   # will be displaced
        s0.produce({"k": 2}, 1.0)
        s0.produce({"k": 3}, 2.0)   # displaces k=1 (expiry stamped at t=2)
        drain(graph)
        s1.produce({"k": 1}, 3.0)   # probes: k=1 left the count window
        drain(graph)
        assert results == []

    def test_last_n_still_match(self):
        graph, s0, s1, join, results = build(count=2)
        for i, key in enumerate((1, 2, 3)):
            s0.produce({"k": key}, float(i))
        drain(graph)
        s1.produce({"k": 3}, 5.0)
        drain(graph)
        assert len(results) == 1
        assert results[0]["k"] == 3

    def test_join_state_shrinks_with_displacement(self):
        graph, s0, s1, join, results = build(count=3)
        for i in range(10):
            s0.produce({"k": i}, float(i))
            drain(graph)
        # Sweep 0 evicts lazily on the next probe/insert; force one probe.
        s1.produce({"k": 99}, 20.0)
        drain(graph)
        assert len(join.sweeps[0]) <= 3
