"""Integration test for the Figure 3 scenario.

A monitoring tool subscribes to the *estimated CPU usage* of a time-based
sliding window join.  The subscription must transitively include the whole
dependency cascade of Figure 3 — window sizes, element validities, stream
rates, predicate cost, sweep-area module metadata — and the estimate must
track the measured CPU usage as the workload runs.
"""

from __future__ import annotations

import pytest

from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.join import SlidingWindowJoin
from repro.operators.sweeparea import PROBE_FRACTION
from repro.operators.window import TimeWindow
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, StreamDriver, UniformValues


def fig3_plan(impl="nested-loops"):
    graph = QueryGraph(default_metadata_period=50.0)
    s0 = graph.add(Source("s0", Schema(("k",), element_size=32)))
    s1 = graph.add(Source("s1", Schema(("k",), element_size=32)))
    w0 = graph.add(TimeWindow("w0", 100.0))
    w1 = graph.add(TimeWindow("w1", 100.0))
    join = graph.add(SlidingWindowJoin(
        "join", impl=impl, key_fn=lambda e: e.field("k"), predicate_cost=1.0,
    ))
    sink = graph.add(Sink("out"))
    for a, b in ((s0, w0), (s1, w1), (w0, join), (w1, join), (join, sink)):
        graph.connect(a, b)
    graph.freeze()
    drivers = [
        StreamDriver(s0, ConstantRate(0.2), UniformValues("k", 0, 8), seed=11),
        StreamDriver(s1, ConstantRate(0.2), UniformValues("k", 0, 8), seed=22),
    ]
    return graph, drivers, join


class TestFigure3Cascade:
    def test_single_subscription_includes_whole_cascade(self):
        graph, drivers, join = fig3_plan()
        system = graph.metadata_system
        assert system.included_handler_count == 0
        subscription = join.metadata.subscribe(md.EST_CPU_USAGE)
        # One consumer subscription materialised the full Figure 3 cascade.
        assert system.included_handler_count >= 10
        for name in ("w0", "w1"):
            window = graph.node(name)
            assert window.metadata.is_included(md.EST_ELEMENT_VALIDITY)
            assert window.metadata.is_included(md.WINDOW_SIZE)
            assert window.metadata.is_included(md.EST_OUTPUT_RATE)
        for name in ("s0", "s1"):
            source = graph.node(name)
            assert source.metadata.is_included(md.EST_OUTPUT_RATE)
            assert source.metadata.is_included(md.OUTPUT_RATE)
        assert join.metadata.is_included(md.PREDICATE_COST)
        for sweep in join.sweeps:
            assert sweep.metadata.is_included(PROBE_FRACTION)
        subscription.cancel()
        assert system.included_handler_count == 0

    def test_unused_items_have_no_handler(self):
        """'An item without a handler indicates that this item is available
        but unused, e.g., the estimated output rate of the join.'"""
        graph, drivers, join = fig3_plan()
        subscription = join.metadata.subscribe(md.EST_CPU_USAGE)
        assert md.EST_OUTPUT_RATE in join.metadata.available_keys()
        assert not join.metadata.is_included(md.EST_OUTPUT_RATE)
        subscription.cancel()

    @pytest.mark.parametrize("impl", ["nested-loops", "hash"])
    def test_estimate_tracks_measured_cpu(self, impl):
        graph, drivers, join = fig3_plan(impl)
        estimated = join.metadata.subscribe(md.EST_CPU_USAGE)
        measured = join.metadata.subscribe(md.CPU_USAGE)
        executor = SimulationExecutor(graph, drivers)
        executor.run_until(3000.0)
        est, meas = estimated.get(), measured.get()
        assert meas > 0
        # The estimate should land within a factor of ~2 of the measurement.
        assert est == pytest.approx(meas, rel=1.0)
        estimated.cancel()
        measured.cancel()

    def test_hash_estimate_below_nested_loops(self):
        """Exchangeable modules matter: the hash join's probe fraction pulls
        its CPU estimate (and measurement) below the nested-loops variant."""
        results = {}
        for impl in ("nested-loops", "hash"):
            graph, drivers, join = fig3_plan(impl)
            estimated = join.metadata.subscribe(md.EST_CPU_USAGE)
            measured = join.metadata.subscribe(md.CPU_USAGE)
            executor = SimulationExecutor(graph, drivers)
            executor.run_until(2000.0)
            results[impl] = (estimated.get(), measured.get())
        assert results["hash"][0] < results["nested-loops"][0]
        assert results["hash"][1] < results["nested-loops"][1]

    def test_measured_memory_equals_sweep_state(self):
        graph, drivers, join = fig3_plan()
        memory = join.metadata.subscribe(md.MEMORY_USAGE)
        executor = SimulationExecutor(graph, drivers)
        executor.run_until(1000.0)
        expected = sum(len(sweep) for sweep in join.sweeps) * 32
        assert memory.get() == expected
        memory.cancel()

    def test_estimated_memory_matches_cost_model(self):
        graph, drivers, join = fig3_plan()
        est_memory = join.metadata.subscribe(md.EST_MEMORY_USAGE)
        executor = SimulationExecutor(graph, drivers)
        executor.run_until(2000.0)
        # 2 inputs x rate 0.2 x validity 100 x 32 bytes = 1280.
        assert est_memory.get() == pytest.approx(1280.0, rel=0.15)
        est_memory.cancel()
