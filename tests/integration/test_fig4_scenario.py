"""Integration test for the Figure 4 scenario.

"Figure 4 shows a scenario where two users want to compute the same metadata
value, namely the input rate, concurrently. The time period between two
subsequent accesses of either user is 50 time units. The element arrival rate
is constant. Although all involved events ... occur in a periodic manner, the
metadata computations of both users interfere with each other. While the
correct input rate is obviously 0.1, both users compute incorrect rates."

The naive implementation shared a counter that each access resets; the
periodic handler of Section 3.2.2 fixes it.  This test reproduces both.
"""

from __future__ import annotations

import pytest

from repro.common.clock import VirtualClock
from repro.common.stats import WindowedCounter

TRUE_RATE = 0.1  # one element every 10 time units
ARRIVALS = [10.0 * i for i in range(1, 31)]  # t = 10 .. 300


def simulate_naive_on_demand(user_offsets=(50.0, 75.0), period=50.0, horizon=300.0):
    """Both users compute rate = count-since-last-access / elapsed on a
    *shared* counter — the paper's broken on-demand measurement."""
    clock = VirtualClock()
    counter = WindowedCounter(0.0)
    readings = {offset: [] for offset in user_offsets}

    events = [(t, "arrival") for t in ARRIVALS]
    for offset in user_offsets:
        t = offset
        while t <= horizon:
            events.append((t, offset))
            t += period
    events.sort(key=lambda e: (e[0], 0 if e[1] == "arrival" else 1))

    for t, kind in events:
        clock.advance_to(t)
        if kind == "arrival":
            counter.increment()
        else:
            readings[kind].append(counter.rate_and_reset(clock.now()))
    return readings


def simulate_shared_periodic(user_offsets=(50.0, 75.0), period=50.0, horizon=300.0):
    """One shared periodic handler computes the rate once per fixed window;
    both users read the pre-computed value (Section 3.2.2)."""
    clock = VirtualClock()
    counter = WindowedCounter(0.0)
    value = {"rate": 0.0}

    def refresh():
        value["rate"] = counter.rate_and_reset(clock.now())

    events = [(t, "arrival") for t in ARRIVALS]
    t = period
    while t <= horizon:
        events.append((t, "refresh"))
        t += period
    readings = {offset: [] for offset in user_offsets}
    for offset in user_offsets:
        t = offset
        while t <= horizon:
            events.append((t, offset))
            t += period
    # Arrivals first, then refresh, then reads at equal timestamps.
    order = {"arrival": 0, "refresh": 1}
    events.sort(key=lambda e: (e[0], order.get(e[1], 2)))

    for t, kind in events:
        clock.advance_to(t)
        if kind == "arrival":
            counter.increment()
        elif kind == "refresh":
            refresh()
        else:
            readings[kind].append(value["rate"])
    return readings


class TestFigure4:
    def test_naive_on_demand_interferes(self):
        readings = simulate_naive_on_demand()
        user1 = readings[50.0]
        user2 = readings[75.0]
        # The first user's first reading is still correct...
        assert user1[0] == pytest.approx(TRUE_RATE)
        # ...but every subsequent reading of both users is wrong.
        assert all(r != pytest.approx(TRUE_RATE) for r in user1[1:])
        assert all(r != pytest.approx(TRUE_RATE) for r in user2)

    def test_naive_alternates_over_and_under(self):
        readings = simulate_naive_on_demand()
        user1 = readings[50.0][1:]
        user2 = readings[75.0]
        assert all(r > TRUE_RATE for r in user1)   # 3 elements / 25 units
        assert all(r < TRUE_RATE for r in user2)   # 2 elements / 25 units

    def test_periodic_handler_gives_correct_rate_to_both(self):
        readings = simulate_shared_periodic()
        for user, values in readings.items():
            assert all(v == pytest.approx(TRUE_RATE) for v in values), user

    def test_full_framework_reproduces_periodic_correctness(self):
        """Same scenario through the actual metadata framework."""
        from repro.graph.element import Schema
        from repro.graph.graph import QueryGraph
        from repro.graph.node import Sink, Source
        from repro.metadata import catalogue as md
        from repro.runtime.simulation import SimulationExecutor
        from repro.sources.synthetic import SequentialValues, StreamDriver, TraceArrivals

        graph = QueryGraph(default_metadata_period=50.0)
        source = graph.add(Source("s", Schema(("x",))))
        sink = graph.add(Sink("out"))
        graph.connect(source, sink)
        graph.freeze()
        # Two consumers share one handler (Section 2.1).
        user1 = source.metadata.subscribe(md.OUTPUT_RATE)
        user2 = source.metadata.subscribe(md.OUTPUT_RATE)
        assert user1.handler is user2.handler

        readings1, readings2 = [], []
        # Arrivals at t = 5, 15, 25, ... keep elements clear of the period
        # boundaries, so every 50-unit window contains exactly five of them.
        arrivals = TraceArrivals([5.0 + 10.0 * i for i in range(60)])
        executor = SimulationExecutor(
            graph, [StreamDriver(source, arrivals, SequentialValues())]
        )
        executor.every(50.0, lambda now: readings1.append(user1.get()), start=60.0)
        executor.every(50.0, lambda now: readings2.append(user2.get()), start=85.0)
        executor.run_until(500.0)
        assert all(r == pytest.approx(TRUE_RATE) for r in readings1)
        assert all(r == pytest.approx(TRUE_RATE) for r in readings2)
        user1.cancel()
        user2.cancel()
