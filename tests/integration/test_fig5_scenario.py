"""Integration test for the Figure 5 scenario.

"While the updates on the input rate correctly cover the bursty nature of the
element arrival, the less frequent updates on the average input rate are
always computed for the peak input rate, which results in a wrong average
value."  (Section 3.2.3, case (i): an on-demand aggregate over a periodically
updated item is unsynchronized and mis-weights the samples.)

Setup: bursty arrivals (peak rate 1.0 for 10 units, silent for 30), input
rate updated every 10 units.  A consumer reading an *on-demand* online
average every 40 units — phase-locked with the bursts — sees only the peak
windows.  The *triggered* average of Section 3.2.3 folds every rate update
and converges to the true duty-cycled mean.
"""

from __future__ import annotations

import pytest

from repro.common.stats import OnlineMean
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import BurstyArrivals, SequentialValues, StreamDriver

PEAK_RATE = 1.0
ON_DURATION = 10.0
OFF_DURATION = 30.0
TRUE_MEAN_RATE = PEAK_RATE * ON_DURATION / (ON_DURATION + OFF_DURATION)  # 0.25

ON_DEMAND_AVG = MetadataKey("test.on_demand_avg_rate")


def build():
    graph = QueryGraph(default_metadata_period=10.0)
    source = graph.add(Source("s", Schema(("x",))))
    sink = graph.add(Sink("out"))
    graph.connect(source, sink)
    graph.freeze()

    # The Figure 5 anti-pattern: an on-demand online average whose samples
    # are taken at access time, unsynchronized with the rate updates.
    mean = OnlineMean()

    def on_demand_average(ctx):
        mean.add(ctx.value(md.OUTPUT_RATE))
        return mean.value()

    source.metadata.define(MetadataDefinition(
        ON_DEMAND_AVG, Mechanism.ON_DEMAND, compute=on_demand_average,
        dependencies=[SelfDep(md.OUTPUT_RATE)],
        description="online average computed on access (Figure 5's bug)",
    ))
    driver = StreamDriver(
        source,
        BurstyArrivals(PEAK_RATE, ON_DURATION, OFF_DURATION),
        SequentialValues(),
    )
    return graph, source, driver


class TestFigure5:
    def test_on_demand_average_sees_only_peaks(self):
        graph, source, driver = build()
        od_sub = source.metadata.subscribe(ON_DEMAND_AVG)
        executor = SimulationExecutor(graph, [driver])
        readings = []
        # Access every 40 units at t=15, 55, 95, ... : always right after a
        # burst window's rate update landed.
        executor.every(40.0, lambda now: readings.append(od_sub.get()), start=15.0)
        executor.run_until(1000.0)
        # The mis-weighted average reports roughly the peak rate.
        assert readings[-1] > 2.5 * TRUE_MEAN_RATE
        od_sub.cancel()

    def test_triggered_average_converges_to_true_mean(self):
        graph, source, driver = build()
        # AVG of OUTPUT_RATE via a triggered handler: folds *every* update.
        source.metadata.define(MetadataDefinition(
            MetadataKey("test.triggered_avg_rate"), Mechanism.TRIGGERED,
            compute=self._make_folding_mean(),
            dependencies=[SelfDep(md.OUTPUT_RATE)],
        ))
        tr_sub = source.metadata.subscribe(MetadataKey("test.triggered_avg_rate"))
        executor = SimulationExecutor(graph, [driver])
        executor.run_until(1000.0)
        assert tr_sub.get() == pytest.approx(TRUE_MEAN_RATE, rel=0.15)
        tr_sub.cancel()

    @staticmethod
    def _make_folding_mean():
        mean = OnlineMean()

        def compute(ctx):
            mean.add(ctx.value(md.OUTPUT_RATE))
            return mean.value()

        return compute

    def test_error_gap_between_mechanisms(self):
        """Head-to-head: the triggered average is dramatically closer."""
        graph, source, driver = build()
        source.metadata.define(MetadataDefinition(
            MetadataKey("test.triggered_avg_rate"), Mechanism.TRIGGERED,
            compute=self._make_folding_mean(),
            dependencies=[SelfDep(md.OUTPUT_RATE)],
        ))
        od_sub = source.metadata.subscribe(ON_DEMAND_AVG)
        tr_sub = source.metadata.subscribe(MetadataKey("test.triggered_avg_rate"))
        executor = SimulationExecutor(graph, [driver])
        od_readings = []
        executor.every(40.0, lambda now: od_readings.append(od_sub.get()), start=15.0)
        executor.run_until(1000.0)
        od_error = abs(od_readings[-1] - TRUE_MEAN_RATE)
        tr_error = abs(tr_sub.get() - TRUE_MEAN_RATE)
        assert tr_error < od_error / 5.0
        od_sub.cancel()
        tr_sub.cancel()
