"""Lifecycle integration tests: subscription churn across a shared plan."""

from __future__ import annotations

import pytest

from repro.costmodel.install import install_estimates
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.filter import Filter
from repro.operators.join import SlidingWindowJoin
from repro.operators.window import TimeWindow
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, StreamDriver, UniformValues


def shared_plan():
    """Two queries sharing a filtered source (subquery sharing)."""
    graph = QueryGraph(default_metadata_period=25.0)
    s0 = graph.add(Source("s0", Schema(("k",))))
    s1 = graph.add(Source("s1", Schema(("k",))))
    shared = graph.add(Filter("shared", lambda e: e.field("k") < 6))
    w0 = graph.add(TimeWindow("w0", 80.0))
    w1 = graph.add(TimeWindow("w1", 80.0))
    join = graph.add(SlidingWindowJoin("join", key_fn=lambda e: e.field("k")))
    q1 = graph.add(Sink("q1"))
    q2 = graph.add(Sink("q2"))
    graph.connect(s0, shared)
    graph.connect(shared, w0)      # query 1 via the join
    graph.connect(s1, w1)
    graph.connect(w0, join)
    graph.connect(w1, join)
    graph.connect(join, q1)
    graph.connect(shared, q2)      # query 2 reads the shared filter directly
    graph.freeze()
    # The window's estimated output rate recurses through the filter, which
    # gains its estimate item from the cost-model installer.
    install_estimates(graph)
    return graph


class TestSubscriptionChurn:
    def test_repeated_subscribe_unsubscribe_is_stable(self):
        graph = shared_plan()
        join = graph.node("join")
        system = graph.metadata_system
        for _ in range(25):
            subscription = join.metadata.subscribe(md.EST_CPU_USAGE)
            subscription.get()
            subscription.cancel()
        assert system.included_handler_count == 0
        assert system.handlers_created == system.handlers_removed

    def test_overlapping_consumers_share_cascade(self):
        graph = shared_plan()
        join = graph.node("join")
        system = graph.metadata_system
        cpu = join.metadata.subscribe(md.EST_CPU_USAGE)
        count_with_one = system.included_handler_count
        memory = join.metadata.subscribe(md.EST_MEMORY_USAGE)
        count_with_two = system.included_handler_count
        # The second subscription shares most of the cascade: it adds far
        # fewer handlers than the first did.
        assert count_with_two - count_with_one < count_with_one
        memory.cancel()
        assert system.included_handler_count == count_with_one
        cpu.cancel()
        assert system.included_handler_count == 0

    def test_subscribe_all_then_cancel_everything(self):
        graph = shared_plan()
        install_estimates(graph)
        system = graph.metadata_system
        subscriptions = system.subscribe_all()
        assert system.included_handler_count > 0
        for subscription in subscriptions:
            subscription.cancel()
        assert system.included_handler_count == 0
        # Periodic tasks all unregistered too.
        assert system.scheduler.active_task_count() == 0

    def test_churn_while_stream_runs(self):
        graph = shared_plan()
        join = graph.node("join")
        drivers = [
            StreamDriver(graph.node("s0"), ConstantRate(0.5),
                         UniformValues("k", 0, 10), seed=1),
            StreamDriver(graph.node("s1"), ConstantRate(0.5),
                         UniformValues("k", 0, 10), seed=2),
        ]
        executor = SimulationExecutor(graph, drivers)
        values = []

        def churn(now):
            subscription = join.metadata.subscribe(md.EST_CPU_USAGE)
            values.append(subscription.get())
            subscription.cancel()

        executor.every(100.0, churn)
        executor.run_until(1000.0)
        assert len(values) == 10
        assert graph.metadata_system.included_handler_count == 0

    def test_sharing_reflected_in_reuse_frequency(self):
        graph = shared_plan()
        q2 = graph.node("q2")
        with q2.metadata.subscribe(md.REUSE_FREQUENCY) as subscription:
            assert subscription.get() == 2  # 'shared' feeds w0 and q2
