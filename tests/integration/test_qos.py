"""Query-level QoS metadata: latency measurement, violation item, monitor,
and the priority scheduler consuming sink priorities."""

from __future__ import annotations

import pytest

from repro.adaptation.qos_monitor import QoSMonitor
from repro.common.errors import GraphError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.filter import Filter
from repro.runtime.scheduler import PriorityScheduler
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, SequentialValues, StreamDriver


def latency_plan(capacity, qos=None):
    graph = QueryGraph(default_metadata_period=25.0)
    source = graph.add(Source("s", Schema(("x",))))
    fil = graph.add(Filter("f", lambda e: True))
    sink = graph.add(Sink("out", qos=qos or {}))
    graph.connect(source, fil)
    graph.connect(fil, sink)
    executor = SimulationExecutor(
        graph,
        [StreamDriver(source, ConstantRate(1.0), SequentialValues())],
        service_capacity=capacity,
    )
    return graph, source, sink, executor


class TestLatencyMetadata:
    def test_latency_near_zero_with_headroom(self):
        graph, source, sink, executor = latency_plan(capacity=float("inf"))
        subscription = sink.metadata.subscribe(md.LATENCY)
        executor.run_until(500.0)
        assert subscription.get() == pytest.approx(0.0, abs=0.5)
        subscription.cancel()

    def test_latency_grows_under_overload(self):
        # 1 arrival/unit needing 2 steps each, capacity 1.5 -> backlog grows.
        graph, source, sink, executor = latency_plan(capacity=1.5)
        subscription = sink.metadata.subscribe(md.LATENCY)
        executor.run_until(200.0)
        early = subscription.get()
        executor.run_until(800.0)
        late = subscription.get()
        assert late > early
        assert late > 10.0
        subscription.cancel()

    def test_qos_violation_flips_under_overload(self):
        graph, source, sink, executor = latency_plan(
            capacity=1.5, qos={"max_latency": 5.0}
        )
        subscription = sink.metadata.subscribe(md.QOS_VIOLATION)
        assert subscription.get() is False
        executor.run_until(800.0)
        assert subscription.get() is True
        subscription.cancel()

    def test_no_max_latency_never_violates(self):
        graph, source, sink, executor = latency_plan(capacity=1.5, qos={})
        subscription = sink.metadata.subscribe(md.QOS_VIOLATION)
        executor.run_until(500.0)
        assert subscription.get() is False
        subscription.cancel()


class TestQoSMonitor:
    def test_records_episode_boundaries(self):
        graph, source, sink, executor = latency_plan(
            capacity=1.5, qos={"max_latency": 5.0}
        )
        monitor = QoSMonitor(graph)
        executor.every(50.0, monitor.check)
        executor.run_until(600.0)
        assert len(monitor.episodes) >= 1
        assert monitor.violating_sinks == ["out"]
        assert monitor.total_violation_time(600.0) > 0
        monitor.close()

    def test_episode_closes_when_load_stops(self):
        graph, source, sink, executor = latency_plan(
            capacity=1.5, qos={"max_latency": 5.0}
        )
        monitor = QoSMonitor(graph)
        executor.every(50.0, monitor.check)
        executor.run_until(600.0)          # builds backlog + violation
        executor.run_until(3000.0)         # arrivals keep coming at 1/u...
        # Can't recover under sustained overload; but with the stream being
        # processed after we stop feeding (drivers end at infinite horizon),
        # just assert the monitor kept a consistent open/closed bookkeeping.
        open_episodes = [e for e in monitor.episodes if e.ongoing]
        assert len(open_episodes) == len(monitor.violating_sinks)
        monitor.close()

    def test_callback_on_episode_start(self):
        graph, source, sink, executor = latency_plan(
            capacity=1.5, qos={"max_latency": 5.0}
        )
        seen = []
        monitor = QoSMonitor(graph, callback=seen.append)
        executor.every(50.0, monitor.check)
        executor.run_until(600.0)
        assert seen and seen[0].sink == "out"
        monitor.close()

    def test_requires_sinks(self):
        graph = QueryGraph()
        graph.add(Source("s", Schema(("x",))))
        with pytest.raises(Exception):
            QoSMonitor(graph)


class TestPriorityScheduler:
    def build_two_queries(self):
        graph = QueryGraph(default_metadata_period=25.0)
        s1 = graph.add(Source("s1", Schema(("x",))))
        s2 = graph.add(Source("s2", Schema(("x",))))
        f1 = graph.add(Filter("f1", lambda e: True))
        f2 = graph.add(Filter("f2", lambda e: True))
        gold = graph.add(Sink("gold", priority=10))
        bulk = graph.add(Sink("bulk", priority=1))
        graph.connect(s1, f1)
        graph.connect(f1, gold)
        graph.connect(s2, f2)
        graph.connect(f2, bulk)
        return graph, s1, s2, gold, bulk

    def test_subscribes_to_sink_priorities(self):
        graph, *_ = self.build_two_queries()
        graph.freeze()
        scheduler = PriorityScheduler()
        scheduler.attach(graph)
        for sink in graph.sinks():
            assert sink.metadata.is_included(md.PRIORITY)
        scheduler.detach()
        for sink in graph.sinks():
            assert not sink.metadata.is_included(md.PRIORITY)

    def test_high_priority_query_served_first(self):
        graph, s1, s2, gold, bulk = self.build_two_queries()
        scheduler = PriorityScheduler()
        executor = SimulationExecutor(
            graph,
            [StreamDriver(s1, ConstantRate(1.0), SequentialValues(), seed=1),
             StreamDriver(s2, ConstantRate(1.0), SequentialValues(), seed=2)],
            scheduler=scheduler,
            service_capacity=2.0,  # half of what full service needs
        )
        executor.run_until(1000.0)
        # The gold query keeps up; the bulk query starves.
        assert gold.received > bulk.received * 3
        assert gold.pending_elements() + graph.node("f1").pending_elements() \
            < graph.node("f2").pending_elements() + bulk.pending_elements()

    def test_requires_frozen_graph(self):
        graph, *_ = self.build_two_queries()
        with pytest.raises(GraphError):
            PriorityScheduler().attach(graph)

    def test_effective_priority_propagates_upstream(self):
        graph, *_ = self.build_two_queries()
        graph.freeze()
        scheduler = PriorityScheduler()
        scheduler.attach(graph)
        assert scheduler.priority(graph.node("f1")) == 10
        assert scheduler.priority(graph.node("f2")) == 1
        scheduler.detach()
