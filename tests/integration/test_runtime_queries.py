"""Runtime query installation and uninstallation.

Section 1 motivates the dynamic provision of metadata with exactly this:
"the set of metadata items required in a SSPS at runtime ... is likely to
vary over time, e.g., when new queries are installed."  These tests install
and remove whole queries on a live graph and check that metadata registries,
handlers and subplan sharing behave.
"""

from __future__ import annotations

import pytest

from repro.common.errors import GraphError, WiringError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.filter import Filter
from repro.operators.window import TimeWindow
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, SequentialValues, StreamDriver


def base_graph():
    graph = QueryGraph(default_metadata_period=25.0)
    source = graph.add(Source("s", Schema(("x",))))
    shared = graph.add(Filter("shared", lambda e: e.field("x") % 2 == 0))
    sink = graph.add(Sink("q1"))
    graph.connect(source, shared)
    graph.connect(shared, sink)
    graph.freeze()
    return graph, source, shared, sink


class TestInstall:
    def test_install_query_sharing_existing_subplan(self):
        graph, source, shared, sink1 = base_graph()
        fil2 = Filter("only_small", lambda e: e.field("x") < 10)
        sink2 = Sink("q2")
        installed = graph.install_query(
            [fil2, sink2], [(shared, fil2), (fil2, sink2)]
        )
        assert [n.name for n in installed] == ["only_small", "q2"]
        assert fil2.metadata is not None  # registry attached
        assert shared.downstream_nodes == [sink1, fil2]

    def test_installed_query_processes_elements(self):
        graph, source, shared, sink1 = base_graph()
        executor = SimulationExecutor(
            graph, [StreamDriver(source, ConstantRate(0.5), SequentialValues())]
        )
        executor.run_until(100.0)
        received_before = sink1.received

        fil2 = Filter("only_small", lambda e: e.field("x") < 1000)
        sink2 = Sink("q2")
        graph.install_query([fil2, sink2], [(shared, fil2), (fil2, sink2)])
        executor.rebuild_schedule()
        executor.run_until(300.0)
        assert sink1.received > received_before  # old query still runs
        assert sink2.received > 0                # new query gets data

    def test_installed_node_metadata_is_subscribable(self):
        graph, source, shared, sink1 = base_graph()
        fil2 = Filter("f2", lambda e: True)
        sink2 = Sink("q2")
        graph.install_query([fil2, sink2], [(shared, fil2), (fil2, sink2)])
        with fil2.metadata.subscribe(md.SELECTIVITY) as subscription:
            assert subscription.get() == 0.0

    def test_add_outside_update_window_rejected(self):
        graph, *_ = base_graph()
        with pytest.raises(GraphError):
            graph.add(Sink("late"))

    def test_existing_node_cannot_gain_inputs(self):
        graph, source, shared, sink1 = base_graph()
        source2 = Source("s2", Schema(("x",)))
        graph.begin_update()
        graph.add(source2)
        with pytest.raises(WiringError):
            graph.connect(source2, shared)
        graph._updating = False  # abandon the broken update

    def test_commit_validates_pending_nodes(self):
        graph, source, shared, sink1 = base_graph()
        graph.begin_update()
        graph.add(Filter("dangling", lambda e: True))
        with pytest.raises(WiringError):
            graph.commit_update()

    def test_nested_begin_update_rejected(self):
        graph, *_ = base_graph()
        graph.begin_update()
        with pytest.raises(GraphError):
            graph.begin_update()

    def test_install_query_rolls_back_updating_flag_on_error(self):
        graph, source, shared, sink1 = base_graph()
        with pytest.raises(WiringError):
            graph.install_query([Filter("dangling", lambda e: True)], [])
        # A follow-up valid installation still works.
        fil2, sink2 = Filter("ok", lambda e: True), Sink("q2")
        graph.install_query([fil2, sink2], [(shared, fil2), (fil2, sink2)])


class TestUninstall:
    def test_uninstall_removes_exclusive_subplan(self):
        graph, source, shared, sink1 = base_graph()
        removed = graph.uninstall_query(sink1)
        # Everything was exclusive to q1: sink, filter and source go.
        assert {n.name for n in removed} == {"q1", "shared", "s"}
        assert graph.nodes() == []

    def test_uninstall_keeps_shared_subplan(self):
        graph, source, shared, sink1 = base_graph()
        fil2, sink2 = Filter("f2", lambda e: True), Sink("q2")
        graph.install_query([fil2, sink2], [(shared, fil2), (fil2, sink2)])
        removed = graph.uninstall_query(sink2)
        assert {n.name for n in removed} == {"q2", "f2"}
        # The shared prefix survives and q1 still works.
        assert graph.node("shared") is shared
        assert shared.downstream_nodes == [sink1]
        source.produce({"x": 2}, 0.0)
        shared.step()
        sink1.step()
        assert sink1.received == 1

    def test_uninstall_blocked_by_included_metadata(self):
        graph, source, shared, sink1 = base_graph()
        subscription = shared.metadata.subscribe(md.SELECTIVITY)
        with pytest.raises(GraphError):
            graph.uninstall_query(sink1)
        subscription.cancel()
        graph.uninstall_query(sink1)

    def test_uninstall_unknown_sink_rejected(self):
        graph, *_ = base_graph()
        with pytest.raises(GraphError):
            graph.uninstall_query(Sink("ghost"))

    def test_uninstall_non_sink_rejected(self):
        graph, source, shared, sink1 = base_graph()
        with pytest.raises(GraphError):
            graph.uninstall_query(shared)

    def test_registries_forgotten_after_uninstall(self):
        graph, source, shared, sink1 = base_graph()
        registries_before = len(graph.metadata_system.registries())
        graph.uninstall_query(sink1)
        assert len(graph.metadata_system.registries()) == registries_before - 3
        # subscribe_all touches nothing stale.
        assert graph.metadata_system.subscribe_all() == []

    def test_driver_of_uninstalled_source_stops(self):
        graph, source, shared, sink1 = base_graph()
        executor = SimulationExecutor(
            graph, [StreamDriver(source, ConstantRate(0.5), SequentialValues())]
        )
        executor.run_until(50.0)
        produced_at_uninstall = source.produced
        graph.uninstall_query(sink1)
        executor.rebuild_schedule()
        executor.run_until(300.0)
        assert source.produced == produced_at_uninstall

    def test_node_reusable_after_uninstall(self):
        graph, source, shared, sink1 = base_graph()
        graph.uninstall_query(sink1)
        # _added_to was cleared; the sink can join a new graph.
        other = QueryGraph()
        src = other.add(Source("s", Schema(("x",))))
        other.add(sink1)
        other.connect(src, sink1)
        other.freeze()


class TestUninstallWithModules:
    def test_join_query_uninstall_drops_module_registries(self):
        from repro.operators.join import SlidingWindowJoin
        from repro.operators.window import TimeWindow

        graph = QueryGraph(default_metadata_period=25.0)
        s0 = graph.add(Source("s0", Schema(("k",))))
        s1 = graph.add(Source("s1", Schema(("k",))))
        w0 = graph.add(TimeWindow("w0", 50.0))
        w1 = graph.add(TimeWindow("w1", 50.0))
        join = graph.add(SlidingWindowJoin("join", impl="hash",
                                           key_fn=lambda e: e.field("k")))
        sink = graph.add(Sink("q"))
        for a, b in ((s0, w0), (s1, w1), (w0, join), (w1, join), (join, sink)):
            graph.connect(a, b)
        graph.freeze()
        registries_before = len(graph.metadata_system.registries())
        removed = graph.uninstall_query(sink)
        assert {n.name for n in removed} == {"q", "join", "w0", "w1", "s0", "s1"}
        # 6 node registries + 2 sweep registries + 2 nested bucket-index
        # registries are gone.
        assert len(graph.metadata_system.registries()) == registries_before - 10


class TestInstallRollback:
    def test_failed_install_leaves_no_trace(self):
        graph, source, shared, sink1 = base_graph()
        shared_consumers_before = list(shared.downstream_nodes)
        nodes_before = {n.name for n in graph.nodes()}
        queues_before = len(graph.queues())

        fil = Filter("partial", lambda e: True)
        dangling = Filter("dangling", lambda e: True)  # no sink: commit fails
        with pytest.raises(WiringError):
            graph.install_query(
                [fil, dangling],
                [(shared, fil), (fil, dangling)],
            )
        assert {n.name for n in graph.nodes()} == nodes_before
        assert shared.downstream_nodes == shared_consumers_before
        assert len(graph.queues()) == queues_before
        # Rolled-back nodes are reusable in a later (valid) installation.
        sink2 = Sink("q2")
        graph.install_query([fil, sink2], [(shared, fil), (fil, sink2)])
        assert graph.node("partial") is fil
