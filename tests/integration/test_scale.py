"""Moderate-scale sanity checks: many queries, many consumers.

The paper's setting is "thousands of continuous queries"; CI budgets keep
these at hundreds, which already exposes quadratic bookkeeping if any creeps
in.  Wall-time bounds are generous — the point is algorithmic shape, not raw
speed.
"""

from __future__ import annotations

import time

from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.filter import Filter
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, SequentialValues, StreamDriver

N_QUERIES = 200


def big_graph():
    graph = QueryGraph(default_metadata_period=100.0)
    drivers = []
    for i in range(N_QUERIES):
        source = graph.add(Source(f"s{i}", Schema(("x",))))
        fil = graph.add(Filter(f"f{i}", lambda e: e.field("x") % 2 == 0))
        sink = graph.add(Sink(f"q{i}"))
        graph.connect(source, fil)
        graph.connect(fil, sink)
        drivers.append(StreamDriver(source, ConstantRate(0.1),
                                    SequentialValues(), seed=i))
    graph.freeze()
    return graph, drivers


class TestScale:
    def test_hundreds_of_queries_run(self):
        graph, drivers = big_graph()
        executor = SimulationExecutor(graph, drivers)
        started = time.perf_counter()
        executor.run_until(500.0)
        elapsed = time.perf_counter() - started
        assert sum(sink.received for sink in graph.sinks()) == N_QUERIES * 25
        assert elapsed < 30.0

    def test_mass_subscription_lifecycle(self):
        graph, drivers = big_graph()
        system = graph.metadata_system
        started = time.perf_counter()
        subscriptions = []
        for operator in graph.operators():
            subscriptions.append(operator.metadata.subscribe(md.AVG_SELECTIVITY))
            subscriptions.append(operator.metadata.subscribe(md.AVG_INPUT_RATE.q(0)))
        include_time = time.perf_counter() - started
        # 2 consumer subs/operator -> avg + selectivity + avg_rate + rate.
        assert system.included_handler_count == N_QUERIES * 4
        for subscription in subscriptions:
            subscription.cancel()
        assert system.included_handler_count == 0
        assert include_time < 10.0

    def test_periodic_load_stays_proportional(self):
        """Only subscribed queries pay maintenance: subscribing 10 of 200
        queries' rates must schedule exactly 10 periodic tasks."""
        graph, drivers = big_graph()
        subscriptions = [
            graph.node(f"f{i}").metadata.subscribe(md.INPUT_RATE.q(0))
            for i in range(10)
        ]
        assert graph.metadata_system.scheduler.active_task_count() == 10
        executor = SimulationExecutor(graph, drivers)
        executor.run_until(1000.0)
        for subscription in subscriptions:
            assert subscription.handler.update_count >= 10
            subscription.cancel()
        assert graph.metadata_system.scheduler.active_task_count() == 0
