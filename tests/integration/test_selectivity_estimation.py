"""Value-distribution metadata drives selectivity estimation.

The query-optimization application of Section 1: "changes in stream
characteristics, such as stream rates or value distributions, may
necessitate re-optimizations."  Here a consumer subscribes to a source's
histogram metadata and predicts the selectivity of a range filter; the
prediction is validated against the filter's own *measured* selectivity
metadata, including after the value distribution drifts.
"""

from __future__ import annotations

import pytest

from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.filter import Filter
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, StreamDriver, UniformValues

THRESHOLD = 30


def build(low=0, high=100):
    graph = QueryGraph(default_metadata_period=100.0)
    source = graph.add(Source("s", Schema(("x",))))
    fil = graph.add(Filter("f", lambda e: e.field("x") < THRESHOLD))
    sink = graph.add(Sink("out"))
    graph.connect(source, fil)
    graph.connect(fil, sink)
    graph.freeze()
    driver = StreamDriver(source, ConstantRate(2.0),
                          UniformValues("x", low, high), seed=9)
    return graph, source, fil, driver


class TestHistogramSelectivity:
    def test_estimate_matches_measured(self):
        graph, source, fil, driver = build(low=0, high=100)
        distribution = source.metadata.subscribe(md.VALUE_DISTRIBUTION)
        measured = fil.metadata.subscribe(md.SELECTIVITY)
        executor = SimulationExecutor(graph, [driver])
        executor.run_until(2000.0)
        histogram = distribution.get()["histogram"]
        estimated = histogram.selectivity_below(THRESHOLD)
        assert estimated == pytest.approx(0.3, abs=0.05)
        assert measured.get() == pytest.approx(estimated, abs=0.07)
        distribution.cancel()
        measured.cancel()

    def test_estimate_tracks_distribution_drift(self):
        """After the value range shifts, the *fresh* histogram predicts the
        new selectivity — dynamic metadata earning its keep."""
        graph, source, fil, driver = build(low=0, high=100)
        distribution = source.metadata.subscribe(md.VALUE_DISTRIBUTION)
        executor = SimulationExecutor(graph, [driver])
        executor.run_until(1000.0)
        before = distribution.get()["histogram"].selectivity_below(THRESHOLD)

        # Drift: values now come from [50, 150) — nothing passes the filter.
        driver.values = UniformValues("x", 50, 150)
        executor.run_until(2500.0)
        after = distribution.get()["histogram"].selectivity_below(THRESHOLD)
        assert before == pytest.approx(0.3, abs=0.06)
        assert after == pytest.approx(0.0, abs=0.02)
        distribution.cancel()
