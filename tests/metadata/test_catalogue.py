"""Tests for the standard metadata catalogue (Figure 2's taxonomy)."""

from __future__ import annotations

from repro.metadata import catalogue as md
from repro.metadata.item import MetadataKey


def all_catalogue_keys() -> dict[str, MetadataKey]:
    return {
        name: value for name, value in vars(md).items()
        if isinstance(value, MetadataKey)
    }


class TestCatalogue:
    def test_all_exports_resolve(self):
        for name in md.__all__:
            assert isinstance(getattr(md, name), MetadataKey), name

    def test_keys_are_unique(self):
        keys = list(all_catalogue_keys().values())
        assert len({k.name for k in keys}) == len(keys)

    def test_namespaces_cover_graph_levels(self):
        """The paper's taxonomy: source (stream.*), operator (operator.*,
        window.*, estimate.*) and query-level (query.*) items all exist."""
        namespaces = {key.name.split(".")[0]
                      for key in all_catalogue_keys().values()}
        assert {"stream", "operator", "window", "estimate", "query"} <= namespaces

    def test_qualified_variants_share_base(self):
        left = md.INPUT_RATE.q(0)
        right = md.INPUT_RATE.q(1)
        assert left != right
        assert left.base == right.base == md.INPUT_RATE

    def test_catalogue_keys_are_unqualified(self):
        for name, key in all_catalogue_keys().items():
            assert key.qualifier == (), name
