"""Tests for ComputeContext and the always_propagate flag."""

from __future__ import annotations

import pytest

from repro.common.errors import MetadataError
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep

A, B, C = MetadataKey("a"), MetadataKey("b"), MetadataKey("c")


class TestComputeContext:
    def test_value_with_duplicate_key_rejected(self, make_owner):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(B, Mechanism.STATIC, value=1))

        def compute(ctx):
            return ctx.value(B)  # ambiguous: two dependency entries share B

        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=compute,
            dependencies=[SelfDep(B), SelfDep(B)],
        ))
        with pytest.raises(MetadataError):
            owner.metadata.subscribe(A)

    def test_value_with_missing_key_rejected(self, make_owner):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(B, Mechanism.STATIC, value=1))
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(C),
            dependencies=[SelfDep(B)],
        ))
        with pytest.raises(MetadataError):
            owner.metadata.subscribe(A)

    def test_dependency_refs_lists_resolved_pairs(self, make_owner):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(B, Mechanism.STATIC, value=1))
        refs_seen = []
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED,
            compute=lambda ctx: refs_seen.extend(ctx.dependency_refs()) or 0,
            dependencies=[SelfDep(B)],
        ))
        subscription = owner.metadata.subscribe(A)
        assert refs_seen == [(owner, B)]
        subscription.cancel()

    def test_node_and_now_accessible(self, make_owner, clock):
        owner = make_owner()
        seen = {}

        def compute(ctx):
            seen["node"] = ctx.node
            seen["now"] = ctx.now
            return 0

        owner.metadata.define(MetadataDefinition(A, Mechanism.ON_DEMAND,
                                                 compute=compute))
        subscription = owner.metadata.subscribe(A)
        clock.advance_by(7.0)
        subscription.get()
        assert seen["node"] is owner
        assert seen["now"] == 7.0
        subscription.cancel()


class TestAlwaysPropagate:
    def test_stateful_triggered_chain_folds_repeats(self, make_owner, clock):
        """Without always_propagate, a repeated intermediate value would cut
        the wave; with it, the downstream aggregate sees every sample."""
        owner = make_owner()
        values = iter([5, 5, 5, 5])
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=lambda ctx: next(values),
        ))
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(A),
            dependencies=[SelfDep(A)], always_propagate=True,
        ))
        samples = []
        owner.metadata.define(MetadataDefinition(
            C, Mechanism.TRIGGERED,
            compute=lambda ctx: samples.append(ctx.value(B)) or len(samples),
            dependencies=[SelfDep(B)],
        ))
        subscription = owner.metadata.subscribe(C)
        clock.advance_by(30.0)
        # Seed + 3 periodic samples, all forwarded despite B never changing.
        assert samples == [5, 5, 5, 5]
        subscription.cancel()

    def test_without_flag_repeats_are_cut(self, make_owner, clock):
        owner = make_owner()
        values = iter([5, 5, 5, 5])
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=lambda ctx: next(values),
        ))
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(A),
            dependencies=[SelfDep(A)],  # no always_propagate
        ))
        samples = []
        owner.metadata.define(MetadataDefinition(
            C, Mechanism.TRIGGERED,
            compute=lambda ctx: samples.append(ctx.value(B)) or len(samples),
            dependencies=[SelfDep(B)],
        ))
        subscription = owner.metadata.subscribe(C)
        clock.advance_by(30.0)
        assert samples == [5]  # only the seed; B never reported a change
        subscription.cancel()
