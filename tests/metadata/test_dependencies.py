"""Tests for dependency resolution and automated inclusion (Sections 2.3-2.4)."""

from __future__ import annotations

import pytest

from repro.common.errors import DependencyCycleError, MetadataError
from repro.metadata.item import (
    Mechanism,
    MetadataDefinition,
    MetadataKey,
    ModuleDep,
    NodeDep,
    SelfDep,
    UpstreamDep,
    DownstreamDep,
)

A, B, C, D = (MetadataKey(k) for k in "abcd")


def define_static(registry, key, value=0):
    registry.define(MetadataDefinition(key, Mechanism.STATIC, value=value))


def define_dep(registry, key, deps, compute=None):
    if compute is None:
        compute = lambda ctx: sum(  # noqa: E731
            h.get() for _, h in ctx._dep_handlers
        )
    registry.define(MetadataDefinition(
        key, Mechanism.TRIGGERED, compute=compute, dependencies=deps,
    ))


class TestAutomaticInclusion:
    def test_chain_included_transitively(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, C, 5)
        define_dep(owner.metadata, B, [SelfDep(C)])
        define_dep(owner.metadata, A, [SelfDep(B)])
        subscription = owner.metadata.subscribe(A)
        assert set(owner.metadata.included_keys()) == {A, B, C}
        assert subscription.get() == 5
        subscription.cancel()
        assert owner.metadata.included_keys() == []

    def test_diamond_counts_shared_dependency(self, make_owner):
        """A→B→D and A→C→D: D must survive until both paths are excluded."""
        owner = make_owner()
        define_static(owner.metadata, D, 1)
        define_dep(owner.metadata, B, [SelfDep(D)])
        define_dep(owner.metadata, C, [SelfDep(D)])
        define_dep(owner.metadata, A, [SelfDep(B), SelfDep(C)])
        subscription = owner.metadata.subscribe(A)
        d_handler = owner.metadata.handler(D)
        assert d_handler.include_count == 2  # one per incoming path
        subscription.cancel()
        assert owner.metadata.included_keys() == []

    def test_traversal_stops_at_provided_items(self, make_owner):
        """Stop-at-provided: an existing handler is reused, not rebuilt."""
        owner = make_owner()
        define_static(owner.metadata, C, 1)
        define_dep(owner.metadata, B, [SelfDep(C)])
        define_dep(owner.metadata, A, [SelfDep(B)])
        sb = owner.metadata.subscribe(B)
        handler_b = sb.handler
        handler_c = owner.metadata.handler(C)
        sa = owner.metadata.subscribe(A)
        assert owner.metadata.handler(B) is handler_b
        assert owner.metadata.handler(C) is handler_c
        # C's counter did NOT move: the traversal stopped at B.
        assert handler_b.include_count == 2
        assert handler_c.include_count == 1
        sa.cancel()
        assert owner.metadata.is_included(B)
        assert owner.metadata.is_included(C)
        sb.cancel()
        assert owner.metadata.included_keys() == []

    def test_partial_exclusion_keeps_shared_subtree(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, C, 3)
        define_dep(owner.metadata, A, [SelfDep(C)])
        define_dep(owner.metadata, B, [SelfDep(C)])
        sa = owner.metadata.subscribe(A)
        sb = owner.metadata.subscribe(B)
        sa.cancel()
        assert owner.metadata.is_included(C)
        assert sb.get() == 3
        sb.cancel()
        assert not owner.metadata.is_included(C)


class TestCycles:
    def test_self_cycle_detected(self, make_owner):
        owner = make_owner()
        define_dep(owner.metadata, A, [SelfDep(A)], compute=lambda ctx: 1)
        with pytest.raises(DependencyCycleError):
            owner.metadata.subscribe(A)
        assert owner.metadata.included_keys() == []

    def test_two_node_cycle_detected(self, make_owner):
        owner = make_owner()
        define_dep(owner.metadata, A, [SelfDep(B)], compute=lambda ctx: 1)
        define_dep(owner.metadata, B, [SelfDep(A)], compute=lambda ctx: 1)
        with pytest.raises(DependencyCycleError):
            owner.metadata.subscribe(A)
        assert owner.metadata.included_keys() == []

    def test_cross_node_cycle_detected(self, make_owner):
        left, right = make_owner("left"), make_owner("right")
        define_dep(left.metadata, A, [NodeDep(right, B)], compute=lambda ctx: 1)
        define_dep(right.metadata, B, [NodeDep(left, A)], compute=lambda ctx: 1)
        with pytest.raises(DependencyCycleError):
            left.metadata.subscribe(A)
        assert left.metadata.included_keys() == []
        assert right.metadata.included_keys() == []


class TestInterNodeDependencies:
    def test_node_dep(self, make_owner):
        upstream, downstream = make_owner("up"), make_owner("down")
        define_static(upstream.metadata, B, 7)
        define_dep(downstream.metadata, A, [NodeDep(upstream, B)])
        subscription = downstream.metadata.subscribe(A)
        assert subscription.get() == 7
        assert upstream.metadata.is_included(B)
        subscription.cancel()
        assert not upstream.metadata.is_included(B)

    def test_upstream_dep_specific_port(self, make_owner):
        up0, up1, node = make_owner("up0"), make_owner("up1"), make_owner("n")
        node.upstream_nodes = [up0, up1]
        define_static(up0.metadata, B, 10)
        define_static(up1.metadata, B, 20)
        define_dep(node.metadata, A, [UpstreamDep(B, port=1)])
        subscription = node.metadata.subscribe(A)
        assert subscription.get() == 20
        assert not up0.metadata.is_included(B)
        subscription.cancel()

    def test_upstream_dep_all_ports(self, make_owner):
        up0, up1, node = make_owner("up0"), make_owner("up1"), make_owner("n")
        node.upstream_nodes = [up0, up1]
        define_static(up0.metadata, B, 10)
        define_static(up1.metadata, B, 20)
        define_dep(node.metadata, A, [UpstreamDep(B)],
                   compute=lambda ctx: ctx.values(B))
        subscription = node.metadata.subscribe(A)
        assert subscription.get() == [10, 20]
        subscription.cancel()

    def test_downstream_dep(self, make_owner):
        node, sink = make_owner("n"), make_owner("sink")
        node.downstream_nodes = [sink]
        define_static(sink.metadata, B, {"max_latency": 100})
        define_dep(node.metadata, A, [DownstreamDep(B, port=0)],
                   compute=lambda ctx: ctx.value(B))
        subscription = node.metadata.subscribe(A)
        assert subscription.get() == {"max_latency": 100}
        subscription.cancel()

    def test_missing_port_raises(self, make_owner):
        node = make_owner("n")  # no upstream nodes
        define_dep(node.metadata, A, [UpstreamDep(B, port=0)])
        with pytest.raises(MetadataError):
            node.metadata.subscribe(A)

    def test_owner_without_wiring_raises(self, make_owner, system):
        from repro.metadata.registry import MetadataRegistry

        class Bare:
            name = "bare"

        bare = Bare()
        bare.metadata = MetadataRegistry(bare, system)
        define_dep(bare.metadata, A, [UpstreamDep(B)])
        with pytest.raises(MetadataError):
            bare.metadata.subscribe(A)


class TestModuleDependencies:
    def test_module_dep_resolves_into_module_registry(self, make_owner, system):
        from repro.metadata.registry import MetadataRegistry

        owner = make_owner("op")

        class Module:
            name = "inner"

        module = Module()
        module.metadata = MetadataRegistry(module, system)
        define_static(module.metadata, B, 64)
        owner.add_module("inner", module)
        define_dep(owner.metadata, A, [ModuleDep("inner", B)])
        subscription = owner.metadata.subscribe(A)
        assert subscription.get() == 64
        assert module.metadata.is_included(B)
        subscription.cancel()
        assert not module.metadata.is_included(B)

    def test_nested_module_path(self, make_owner, system):
        from repro.metadata.registry import MetadataRegistry

        owner = make_owner("op")

        class Module:
            def __init__(self, name):
                self.name = name
                self._modules = {}

            def get_module(self, name):
                return self._modules[name]

        outer, inner = Module("outer"), Module("inner")
        outer._modules["inner"] = inner
        inner.metadata = MetadataRegistry(inner, system)
        define_static(inner.metadata, B, "deep")
        owner.add_module("outer", outer)
        define_dep(owner.metadata, A, [ModuleDep("outer.inner", B)],
                   compute=lambda ctx: ctx.value(B))
        subscription = owner.metadata.subscribe(A)
        assert subscription.get() == "deep"
        subscription.cancel()

    def test_missing_module_raises(self, make_owner):
        owner = make_owner("op")
        define_dep(owner.metadata, A, [ModuleDep("ghost", B)])
        with pytest.raises(Exception):
            owner.metadata.subscribe(A)


class TestDynamicDependencies:
    def test_resolver_prefers_already_included_alternative(self, make_owner):
        """Section 4.4.3: A computable from B or C; if C is already included
        the dependency is redefined to point at C, avoiding B's inclusion."""
        owner = make_owner()
        define_static(owner.metadata, B, "from-b")
        define_static(owner.metadata, C, "from-c")

        def resolver(registry):
            if registry.is_included(C):
                return [SelfDep(C)]
            return [SelfDep(B)]

        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED,
            compute=lambda ctx: ctx._dep_handlers[0][1].get(),
            dependencies=resolver,
        ))

        # Case 1: nothing included -> falls back to B.
        s = owner.metadata.subscribe(A)
        assert s.get() == "from-b"
        assert owner.metadata.is_included(B)
        assert not owner.metadata.is_included(C)
        s.cancel()

        # Case 2: C included by someone else -> A binds to C, B stays out.
        sc = owner.metadata.subscribe(C)
        s = owner.metadata.subscribe(A)
        assert s.get() == "from-c"
        assert not owner.metadata.is_included(B)
        s.cancel()
        sc.cancel()

    def test_resolver_called_per_inclusion(self, make_owner):
        owner = make_owner()
        calls = []
        define_static(owner.metadata, B, 1)

        def resolver(registry):
            calls.append(1)
            return [SelfDep(B)]

        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(B),
            dependencies=resolver,
        ))
        s1 = owner.metadata.subscribe(A)
        s1.cancel()
        s2 = owner.metadata.subscribe(A)
        s2.cancel()
        assert len(calls) == 2
