"""Failure-injection tests: broken metadata providers must stay contained."""

from __future__ import annotations

import pytest

from repro.common.errors import HandlerError
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep

A, B, C = MetadataKey("a"), MetadataKey("b"), MetadataKey("c")


class FlakyCompute:
    """Compute function failing on selected invocations."""

    def __init__(self, fail_on=()):
        self.calls = 0
        self.fail_on = set(fail_on)

    def __call__(self, ctx):
        self.calls += 1
        if self.calls in self.fail_on:
            raise RuntimeError(f"sensor glitch on call {self.calls}")
        return self.calls


class TestPeriodicFailures:
    def test_failing_refresh_does_not_stop_the_clock(self, make_owner, clock):
        owner = make_owner()
        flaky = FlakyCompute(fail_on={3})
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=flaky,
        ))
        subscription = owner.metadata.subscribe(A)
        clock.advance_by(50.0)  # refreshes at 10..50; call 3 (t=20) fails
        # The scheduler swallowed the failure and kept the cadence.
        assert flaky.calls == 6
        task = subscription.handler._task
        assert task.error_count == 1
        # The handler still serves the last good value and recovers after.
        assert subscription.get() == 6
        subscription.cancel()

    def test_error_in_one_task_does_not_affect_others(self, make_owner, clock):
        owner = make_owner()
        bad = FlakyCompute(fail_on=set(range(2, 100)))
        good = FlakyCompute()
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=bad,
        ))
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.PERIODIC, period=10.0, compute=good,
        ))
        sa = owner.metadata.subscribe(A)
        sb = owner.metadata.subscribe(B)
        clock.advance_by(100.0)
        assert good.calls == 11  # seed + 10 refreshes, untouched by A's woes
        assert sb.get() == 11
        sa.cancel()
        sb.cancel()


class TestWaveFailures:
    def test_failing_dependent_does_not_poison_siblings(self, make_owner, clock):
        """A triggered handler that raises during a wave leaves the other
        dependents refreshed (best effort within the wave)."""
        owner = make_owner()
        values = iter([1, 2])
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=lambda ctx: next(values),
        ))

        def bad_compute(ctx):
            value = ctx.value(A)
            if value > 1:
                raise RuntimeError("cannot digest the new value")
            return value

        owner.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED, compute=bad_compute, dependencies=[SelfDep(A)],
        ))
        owner.metadata.define(MetadataDefinition(
            C, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(A) * 10,
            dependencies=[SelfDep(A)],
        ))
        sb = owner.metadata.subscribe(B)
        sc = owner.metadata.subscribe(C)
        clock.advance_by(10.0)  # A: 1 -> 2; B's recompute raises inside wave
        # The wave surfaced nothing fatal to the clock; C is up to date and
        # B kept its last good value.
        assert sc.get() == 20
        assert sb.get() == 1
        sb.cancel()
        sc.cancel()

    def test_on_demand_failure_is_surfaced_to_the_accessor(self, make_owner):
        owner = make_owner()
        flaky = FlakyCompute(fail_on={2})
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, compute=flaky,
        ))
        subscription = owner.metadata.subscribe(A)
        assert subscription.get() == 1
        with pytest.raises(HandlerError):
            subscription.get()
        assert subscription.get() == 3  # recovers on the next access
        subscription.cancel()
