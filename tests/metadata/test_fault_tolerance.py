"""Fault-tolerant refresh: retry/backoff, quarantine, stale-while-failing.

Every schedule here runs on the virtual clock, so the retry timelines are
exact — jitter is disabled (``jitter=0``) wherever the test asserts specific
re-arm instants.
"""

from __future__ import annotations

import pytest

from repro.common.errors import HandlerError
from repro.common.faultcheck import FaultPlan
from repro.metadata.introspect import describe_registry, describe_system
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep
from repro.reliability import CircuitState, FailurePolicy

A, B, C = MetadataKey("a"), MetadataKey("b"), MetadataKey("c")


def counting_compute(plan: FaultPlan, key: str):
    """Compute returning 1, 2, ... on successful calls; faults per plan."""
    state = {"n": 0}

    def compute(ctx):
        plan.check(key)
        state["n"] += 1
        return state["n"]

    return compute


class TestPeriodicBackoff:
    POLICY = FailurePolicy(max_retries=2, backoff_base=5.0,
                           backoff_factor=2.0, jitter=0.0,
                           probe_interval=40.0)

    def build(self, make_owner, fail_calls):
        owner = make_owner()
        plan = FaultPlan().fail_on("a", fail_calls)
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0,
            compute=counting_compute(plan, "a"),
            failure_policy=self.POLICY,
        ))
        return owner, plan, owner.metadata.subscribe(A)

    def test_retry_rearms_at_backoff_not_period(self, make_owner, clock):
        owner, plan, sub = self.build(make_owner, fail_calls=[2, 3, 4])
        breaker = sub.handler.breaker
        # t=0: seed succeeded (call 1).
        assert sub.get() == 1
        clock.advance_by(10.0)   # t=10: call 2 fails -> RETRYING
        assert plan.calls("a") == 2
        assert breaker.state is CircuitState.RETRYING
        assert sub.stale is True
        assert sub.get() == 1    # last-good value keeps serving
        clock.advance_by(5.0)    # t=15: backoff(1)=5 -> call 3 fails
        assert plan.calls("a") == 3
        clock.advance_by(10.0)   # t=25: backoff(2)=10 -> call 4 fails -> open
        assert plan.calls("a") == 4
        assert breaker.state is CircuitState.QUARANTINED
        clock.advance_by(30.0)   # t=55: resting, no attempt before the probe
        assert plan.calls("a") == 4
        clock.advance_by(10.0)   # t=65: probe (call 5) succeeds -> close
        assert plan.calls("a") == 5
        assert breaker.state is CircuitState.HEALTHY
        assert sub.stale is False
        assert sub.get() == 2
        clock.advance_by(10.0)   # t=75: plain period cadence resumed
        assert plan.calls("a") == 6
        sub.cancel()

    def test_no_policy_cadence_is_untouched(self, make_owner, clock):
        """Without a failure policy the pre-reliability pinning holds (see
        test_failure_injection): failures never alter the period grid."""
        owner = make_owner()
        plan = FaultPlan().fail_on("a", [3])
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0,
            compute=counting_compute(plan, "a"),
        ))
        sub = owner.metadata.subscribe(A)
        clock.advance_by(50.0)
        assert plan.calls("a") == 6
        assert sub.stale is False  # always False without a policy
        sub.cancel()

    def test_telemetry_records_the_failure_causality(self, make_owner, clock,
                                                     system):
        tel = system.enable_telemetry()
        owner, plan, sub = self.build(make_owner, fail_calls=[2, 3, 4])
        clock.advance_by(65.0)  # through quarantine and the closing probe
        assert len(tel.bus.events(kind="handler.failure")) == 3
        opens = tel.bus.events(kind="circuit.open")
        assert [e.reopened for e in opens] == [False]
        assert len(tel.bus.events(kind="circuit.half_open")) == 1
        assert len(tel.bus.events(kind="circuit.close")) == 1
        # The scheduler emitted the backoff re-arms: 5, 10, then the rest.
        retries = tel.bus.events(kind="handler.retry")
        assert [e.delay for e in retries] == [5.0, 10.0, 40.0]
        assert tel.metrics.counter("scheduler_refresh_errors_total",
                                   {"mode": "virtual"}).value == 3
        assert tel.metrics.gauge("circuits_open").value == 0  # balanced
        sub.cancel()

    def test_failed_probe_reopens_without_gauge_drift(self, make_owner,
                                                      clock, system):
        tel = system.enable_telemetry()
        owner, plan, sub = self.build(
            make_owner, fail_calls=[2, 3, 4, 5])  # call 5 = failed probe
        clock.advance_by(65.0)   # probe at t=65 fails -> reopen
        opens = tel.bus.events(kind="circuit.open")
        assert [e.reopened for e in opens] == [False, True]
        assert tel.metrics.gauge("circuits_open").value == 1  # not 2
        clock.advance_by(40.0)   # t=105: second probe (call 6) closes
        assert sub.handler.breaker.state is CircuitState.HEALTHY
        assert tel.metrics.gauge("circuits_open").value == 0
        sub.cancel()


class TestOnDemandStaleWhileFailing:
    def test_quarantined_reads_serve_last_good_value(self, make_owner, clock):
        owner = make_owner()
        plan = FaultPlan().fail_on("a", range(2, 100))
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, compute=counting_compute(plan, "a"),
            failure_policy=FailurePolicy(max_retries=1, jitter=0.0,
                                         probe_interval=30.0),
        ))
        sub = owner.metadata.subscribe(A)
        assert sub.get() == 1          # call 1 (the inclusion seed succeeded)
        assert sub.get() == 1          # calls 2+3 fail -> quarantined, stale
        assert plan.calls("a") == 3
        assert sub.stale is True
        assert sub.get() == 1          # blocked: no compute attempt at all
        assert plan.calls("a") == 3
        clock.advance_by(31.0)
        assert sub.get() == 1          # probe (call 4) fails -> reopen
        assert plan.calls("a") == 4
        sub.cancel()

    def test_probe_success_recovers_fresh_reads(self, make_owner, clock):
        owner = make_owner()
        plan = FaultPlan().fail_on("a", [2, 3])
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, compute=counting_compute(plan, "a"),
            failure_policy=FailurePolicy(max_retries=1, jitter=0.0,
                                         probe_interval=30.0),
        ))
        sub = owner.metadata.subscribe(A)
        assert sub.get() == 1
        assert sub.get() == 1          # quarantined after calls 2+3
        clock.advance_by(31.0)
        assert sub.get() == 2          # probe succeeds, value is fresh again
        assert sub.stale is False
        sub.cancel()

    def test_stale_while_failing_disabled_raises(self, make_owner, clock):
        owner = make_owner()
        plan = FaultPlan().fail_on("a", range(2, 100))
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, compute=counting_compute(plan, "a"),
            failure_policy=FailurePolicy(max_retries=0, jitter=0.0,
                                         stale_while_failing=False),
        ))
        sub = owner.metadata.subscribe(A)
        assert sub.get() == 1
        with pytest.raises(Exception):
            sub.get()                  # the failure surfaces to the accessor
        with pytest.raises(HandlerError):
            sub.get()                  # and so does the quarantine block
        sub.cancel()


class TestAttemptDeadline:
    def test_overrun_keeps_the_value_but_feeds_the_breaker(self, make_owner):
        import time as _time

        owner = make_owner()

        def slow(ctx):
            _time.sleep(0.02)
            return 7

        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, compute=slow,
            failure_policy=FailurePolicy(max_retries=5, jitter=0.0,
                                         attempt_deadline=0.001),
        ))
        sub = owner.metadata.subscribe(A)
        assert sub.get() == 7          # slow is failing, not wrong
        breaker = sub.handler.breaker
        assert breaker.consecutive_failures >= 1
        assert breaker.describe()["last_error"].startswith("HandlerError")
        sub.cancel()


class TestIntrospection:
    def make_quarantined(self, make_owner):
        owner = make_owner("sensor")
        plan = FaultPlan().fail_on("a", range(2, 100))
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, compute=counting_compute(plan, "a"),
            failure_policy=FailurePolicy(max_retries=0, jitter=0.0),
        ))
        sub = owner.metadata.subscribe(A)
        sub.get()
        sub.get()  # fails -> quarantined, serving stale
        return owner, sub

    def test_describe_registry_reports_health(self, make_owner):
        owner, sub = self.make_quarantined(make_owner)
        entry = [item for item in describe_registry(owner.metadata)["items"]
                 if item["key"] == "a"][0]
        assert entry["stale"] is True
        assert entry["health"]["state"] == "quarantined"
        sub.cancel()

    def test_describe_system_surfaces_the_working_set(self, make_owner,
                                                      system):
        owner, sub = self.make_quarantined(make_owner)
        health = describe_system(system)["health"]
        assert health["unhealthy"] == 1
        assert health["quarantined"] == 1
        item = health["items"][0]
        assert (item["node"], item["key"]) == ("sensor", "a")
        assert item["stale"] is True
        sub.cancel()

    def test_healthy_handlers_stay_out_of_the_health_view(self, make_owner,
                                                          system):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, compute=lambda ctx: 1,
            failure_policy=FailurePolicy(),
        ))
        sub = owner.metadata.subscribe(A)
        health = describe_system(system)["health"]
        assert health == {"unhealthy": 0, "quarantined": 0, "items": []}
        sub.cancel()


class TestStaticRejectsPolicy:
    def test_static_definition_with_policy_is_invalid(self):
        from repro.common.errors import MetadataError
        with pytest.raises(MetadataError):
            MetadataDefinition(A, Mechanism.STATIC, value=1,
                               failure_policy=FailurePolicy())


class TestAcceptanceScenario:
    """ISSUE 8 acceptance: a 500-handler plan with >= 10% of computes
    failing must keep every failure contained — no exception escapes the
    scheduler or a wave, quarantined handlers serve stale values, the
    wave accounting invariant holds exactly, and recovery is observable."""

    SOURCES = 50
    CHAIN = 9  # 50 periodic sources * (1 + 9 triggered) = 500 handlers

    def build(self, make_owner, plan):
        owner = make_owner("fleet")
        policy = FailurePolicy(max_retries=1, backoff_base=1.0,
                               jitter=0.0, probe_interval=25.0)
        subs = []
        for s in range(self.SOURCES):
            src = MetadataKey(f"src{s}")
            owner.metadata.define(MetadataDefinition(
                src, Mechanism.PERIODIC, period=10.0,
                compute=counting_compute(plan, f"src{s}"),
                failure_policy=policy,
            ))
            subs.append(owner.metadata.subscribe(src))
            prev = src
            for d in range(self.CHAIN):
                key = MetadataKey(f"src{s}.d{d}")
                name = f"src{s}.d{d}"

                def compute(ctx, dep=prev, fault_key=name):
                    plan.check(fault_key)
                    return ctx.value(dep) + 1

                owner.metadata.define(MetadataDefinition(
                    key, Mechanism.TRIGGERED, compute=compute,
                    dependencies=[SelfDep(prev)], failure_policy=policy,
                ))
                subs.append(owner.metadata.subscribe(key))
                prev = key
        return owner, subs

    def test_chaos_then_recovery(self, make_owner, clock, system):
        # Dormant plan: inclusion/seeding stays fault-free, so every handler
        # starts with a last-good value.
        plan = FaultPlan(seed=2024, active=False)
        for s in range(self.SOURCES):
            plan.fail_rate(f"src{s}", 0.15)
            for d in range(self.CHAIN):
                plan.fail_rate(f"src{s}.d{d}", 0.15)
        owner, subs = self.build(make_owner, plan)
        engine = system.propagation

        plan.activate()
        clock.advance_by(100.0)  # chaos window: no exception may escape

        stats = plan.stats()
        calls = sum(v["calls"] for v in stats.values())
        failures = sum(v["failures"] for v in stats.values())
        assert failures >= 0.10 * calls  # the chaos was real

        wave = engine.stats()
        assert wave["planned"] == wave["refreshes"] + wave["skipped_poisoned"]
        assert wave["skipped_poisoned"] > 0  # containment actually happened

        # Quarantined handlers serve their last-good value, flagged stale.
        health = describe_system(system)["health"]
        quarantined = [item for item in health["items"]
                       if item["state"] == "quarantined"]
        assert quarantined, "15% fail rate must quarantine something"
        for item in quarantined:
            assert item["stale"] is True
        for sub in subs:
            sub.get()  # never raises: fresh or stale-last-good

        # Recovery: stop injecting and let probes close every circuit.
        plan.deactivate()
        clock.advance_by(200.0)
        health = describe_system(system)["health"]
        assert health["unhealthy"] == 0
        wave = engine.stats()
        assert wave["planned"] == wave["refreshes"] + wave["skipped_poisoned"]
        for sub in subs:
            assert sub.stale is False
        for sub in subs:
            sub.cancel()
