"""Tests for the four handler types (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.common.errors import HandlerError, MetadataNotIncludedError
from repro.metadata.handler import (
    OnDemandHandler,
    PeriodicHandler,
    StaticHandler,
    TriggeredHandler,
)
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep

A, B, C = MetadataKey("a"), MetadataKey("b"), MetadataKey("c")


class TestStaticHandler:
    def test_value_fixed_at_inclusion(self, make_owner):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(A, Mechanism.STATIC, value=3))
        subscription = owner.metadata.subscribe(A)
        assert isinstance(subscription.handler, StaticHandler)
        assert subscription.get() == 3
        assert subscription.handler.update_count == 1  # the initial store
        subscription.cancel()

    def test_static_compute_evaluated_once(self, make_owner):
        owner = make_owner()
        calls = []
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.STATIC, compute=lambda ctx: calls.append(1) or 7,
        ))
        subscription = owner.metadata.subscribe(A)
        subscription.get()
        subscription.get()
        assert calls == [1]
        subscription.cancel()


class TestOnDemandHandler:
    def test_recomputes_on_every_access(self, make_owner):
        owner = make_owner()
        counter = {"n": 0}

        def compute(ctx):
            counter["n"] += 1
            return counter["n"]

        owner.metadata.define(MetadataDefinition(A, Mechanism.ON_DEMAND, compute=compute))
        subscription = owner.metadata.subscribe(A)
        assert isinstance(subscription.handler, OnDemandHandler)
        assert subscription.get() == 1
        assert subscription.get() == 2
        assert subscription.handler.access_count == 2
        subscription.cancel()

    def test_failing_compute_wrapped(self, make_owner):
        owner = make_owner()
        state = {"ok": True}

        def compute(ctx):
            if not state["ok"]:
                raise ValueError("sensor broke")
            return 1

        owner.metadata.define(MetadataDefinition(A, Mechanism.ON_DEMAND, compute=compute))
        subscription = owner.metadata.subscribe(A)
        assert subscription.get() == 1
        state["ok"] = False
        with pytest.raises(HandlerError):
            subscription.get()
        subscription.cancel()


class TestPeriodicHandler:
    def test_refreshes_on_period_boundaries(self, make_owner, clock):
        owner = make_owner()
        values = iter(range(100))
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=lambda ctx: next(values),
        ))
        subscription = owner.metadata.subscribe(A)
        assert isinstance(subscription.handler, PeriodicHandler)
        assert subscription.get() == 0  # seeded at inclusion
        clock.advance_by(9.9)
        assert subscription.get() == 0
        clock.advance_by(0.1)
        assert subscription.get() == 1
        clock.advance_by(30.0)
        assert subscription.get() == 4
        subscription.cancel()

    def test_access_between_periods_is_stable(self, make_owner, clock):
        """Isolation: all consumers see the same pre-computed value."""
        owner = make_owner()
        counter = {"n": 0}

        def compute(ctx):
            counter["n"] += 1
            return counter["n"]

        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=50.0, compute=compute,
        ))
        s1 = owner.metadata.subscribe(A)
        s2 = owner.metadata.subscribe(A)
        clock.advance_by(60.0)
        assert s1.get() == s2.get() == 2
        # Accessing did not trigger any recomputation.
        assert counter["n"] == 2
        s1.cancel()
        s2.cancel()

    def test_unsubscribe_stops_periodic_updates(self, make_owner, clock, system):
        owner = make_owner()
        counter = {"n": 0}

        def compute(ctx):
            counter["n"] += 1
            return counter["n"]

        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=compute,
        ))
        subscription = owner.metadata.subscribe(A)
        clock.advance_by(20.0)
        subscription.cancel()
        count_at_cancel = counter["n"]
        clock.advance_by(100.0)
        assert counter["n"] == count_at_cancel
        assert system.scheduler.active_task_count() == 0

    def test_update_grid_has_no_drift(self, make_owner, clock):
        owner = make_owner()
        times = []
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0,
            compute=lambda ctx: times.append(ctx.now),
        ))
        subscription = owner.metadata.subscribe(A)
        clock.advance_by(35.0)
        assert times[1:] == [10.0, 20.0, 30.0]
        subscription.cancel()


class TestTriggeredHandler:
    def test_initial_value_computed_on_first_subscription(self, make_owner):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(B, Mechanism.STATIC, value=5))
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(B) * 2,
            dependencies=[SelfDep(B)],
        ))
        subscription = owner.metadata.subscribe(A)
        assert isinstance(subscription.handler, TriggeredHandler)
        assert subscription.get() == 10
        assert subscription.handler.compute_count == 1
        subscription.cancel()

    def test_refreshes_when_dependency_changes(self, make_owner, clock):
        owner = make_owner()
        values = iter([1, 2, 3, 4])
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.PERIODIC, period=10.0, compute=lambda ctx: next(values),
        ))
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(B) * 10,
            dependencies=[SelfDep(B)],
        ))
        subscription = owner.metadata.subscribe(A)
        assert subscription.get() == 10
        clock.advance_by(10.0)
        assert subscription.get() == 20
        clock.advance_by(10.0)
        assert subscription.get() == 30
        subscription.cancel()

    def test_periodic_dependency_publishes_every_sample(self, make_owner, clock):
        """A periodic measurement propagates every refresh even when the
        value repeats — dependent aggregates must fold each sample
        (Section 3.2.3's average-input-rate example)."""
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.PERIODIC, period=10.0, compute=lambda ctx: 42,
        ))
        samples = []

        def fold(ctx):
            samples.append(ctx.value(B))
            return len(samples)

        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=fold, dependencies=[SelfDep(B)],
        ))
        subscription = owner.metadata.subscribe(A)
        clock.advance_by(50.0)
        # Seed + one fold per periodic sample.
        assert samples == [42] * 6
        subscription.cancel()

    def test_unchanged_triggered_value_does_not_repropagate(self, make_owner, clock):
        """A *triggered* intermediate whose value did not change cuts the
        wave: derived values are pure functions of their inputs."""
        owner = make_owner()
        values = iter([1, 2, 3, 4, 5, 6])
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.PERIODIC, period=10.0, compute=lambda ctx: next(values),
        ))
        owner.metadata.define(MetadataDefinition(
            C, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(B) > 0,
            dependencies=[SelfDep(B)],  # constant True after first compute
        ))
        top = MetadataKey("top")
        owner.metadata.define(MetadataDefinition(
            top, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(C),
            dependencies=[SelfDep(C)],
        ))
        subscription = owner.metadata.subscribe(top)
        clock.advance_by(50.0)
        # C recomputed per sample, but its value never changed after the
        # seed, so `top` was computed exactly once.
        assert subscription.handler.compute_count == 1
        subscription.cancel()

    def test_manual_event_notification_triggers_dependents(self, make_owner):
        """Section 3.2.3: events fired for on-demand items refresh dependents."""
        owner = make_owner()
        state = {"value": 1}
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.ON_DEMAND, compute=lambda ctx: state["value"],
        ))
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(B) * 100,
            dependencies=[SelfDep(B)],
        ))
        subscription = owner.metadata.subscribe(A)
        assert subscription.get() == 100
        state["value"] = 2
        # Without notification the triggered value is stale.
        assert subscription.get() == 100
        owner.metadata.notify_changed(B)
        assert subscription.get() == 200
        subscription.cancel()

    def test_notify_changed_without_handler_is_noop(self, make_owner):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.ON_DEMAND, compute=lambda ctx: 1,
        ))
        owner.metadata.notify_changed(B)  # nothing included: no error


class TestRemovedHandlerAccess:
    def test_get_after_removal_raises(self, make_owner):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(A, Mechanism.STATIC, value=1))
        subscription = owner.metadata.subscribe(A)
        handler = subscription.handler
        subscription.cancel()
        with pytest.raises(MetadataNotIncludedError):
            handler.get()

    def test_peek_without_value_raises(self, make_owner, system):
        from repro.metadata.handler import TriggeredHandler as TH

        owner = make_owner()
        definition = MetadataDefinition(A, Mechanism.TRIGGERED, compute=lambda ctx: 1)
        handler = TH(owner.metadata, definition)
        with pytest.raises(HandlerError):
            handler.peek()
