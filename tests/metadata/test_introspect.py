"""Tests for metadata discovery / introspection tooling."""

from __future__ import annotations

import json

from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.metadata.introspect import (
    describe_registry,
    describe_system,
    render_report,
    to_json,
)
from repro.operators.filter import Filter


def build():
    graph = QueryGraph(default_metadata_period=25.0)
    source = graph.add(Source("s", Schema(("x",))))
    fil = graph.add(Filter("f", lambda e: True))
    sink = graph.add(Sink("out"))
    graph.connect(source, fil)
    graph.connect(fil, sink)
    graph.freeze()
    return graph, source, fil, sink


class TestDescribe:
    def test_registry_snapshot_lists_all_items(self):
        graph, source, fil, sink = build()
        snapshot = describe_registry(fil.metadata)
        assert snapshot["owner"] == "f"
        assert snapshot["defined"] == len(fil.metadata.available_keys())
        assert snapshot["included"] == 0
        keys = {item["key"] for item in snapshot["items"]}
        assert "operator.selectivity" in keys
        assert "stream.input_rate" in keys

    def test_included_items_carry_handler_stats(self):
        graph, source, fil, sink = build()
        subscription = fil.metadata.subscribe(md.SELECTIVITY)
        graph.clock.advance_by(60.0)
        snapshot = describe_registry(fil.metadata)
        item = next(i for i in snapshot["items"]
                    if i["key"] == "operator.selectivity")
        assert item["included"] is True
        assert item["include_count"] == 1
        assert item["consumer_count"] == 1
        assert item["update_count"] >= 2
        assert item["age"] is not None
        assert item["period"] == 25.0
        subscription.cancel()

    def test_qualified_keys_reported(self):
        graph, source, fil, sink = build()
        snapshot = describe_registry(fil.metadata)
        qualified = [i for i in snapshot["items"] if i["qualifier"]]
        assert any(i["key"] == "stream.input_rate" and i["qualifier"] == [0]
                   for i in qualified)

    def test_system_snapshot_covers_all_registries(self):
        graph, *_ = build()
        snapshot = describe_system(graph.metadata_system)
        owners = {r["owner"] for r in snapshot["registries"]}
        assert {"s", "f", "out"} <= owners
        assert snapshot["stats"]["handlers_included"] == 0

    def test_lock_section_reports_policy_and_counters(self):
        graph, *_ = build()
        locks = describe_system(graph.metadata_system)["locks"]
        assert locks["policy"] == "NoOpLockPolicy"
        assert locks["aggregate"]["read_acquired"] == 0
        assert locks["hot"] == []

    def test_lock_section_surfaces_hot_locks(self):
        from repro.common.clock import VirtualClock
        from repro.metadata.locks import FineGrainedLockPolicy
        from repro.metadata.registry import MetadataSystem
        from repro.metadata.scheduling import VirtualTimeScheduler

        clock = VirtualClock()
        system = MetadataSystem(clock, VirtualTimeScheduler(clock),
                                lock_policy=FineGrainedLockPolicy())
        with system.structure_lock.write():
            pass
        locks = describe_system(system)["locks"]
        assert locks["policy"] == "FineGrainedLockPolicy"
        assert locks["aggregate"]["write_acquired"] >= 1
        assert any(entry["name"] == "graph" for entry in locks["hot"])


class TestRendering:
    def test_report_readable(self):
        graph, source, fil, sink = build()
        subscription = fil.metadata.subscribe(md.SELECTIVITY)
        report = render_report(graph.metadata_system)
        assert "operator.selectivity" in report
        assert "* operator.selectivity" in report  # included marker
        subscription.cancel()

    def test_included_only_filters(self):
        graph, source, fil, sink = build()
        subscription = fil.metadata.subscribe(md.SELECTIVITY)
        report = render_report(graph.metadata_system, included_only=True)
        assert "operator.selectivity" in report
        assert "stream.output_rate" not in report  # not included anywhere
        subscription.cancel()

    def test_json_roundtrips(self):
        graph, source, fil, sink = build()
        subscription = source.metadata.subscribe(md.SCHEMA)
        parsed = json.loads(to_json(graph.metadata_system))
        assert parsed["stats"]["handlers_included"] == 1
        assert any(r["owner"] == "s" for r in parsed["registries"])
        subscription.cancel()


class TestModuleIntrospection:
    def test_report_covers_sweep_modules(self):
        from repro.operators.join import SlidingWindowJoin
        from repro.operators.window import TimeWindow

        graph = QueryGraph()
        s0 = graph.add(Source("s0", Schema(("k",))))
        s1 = graph.add(Source("s1", Schema(("k",))))
        w0, w1 = graph.add(TimeWindow("w0", 50.0)), graph.add(TimeWindow("w1", 50.0))
        join = graph.add(SlidingWindowJoin("join", impl="hash",
                                           key_fn=lambda e: e.field("k")))
        sink = graph.add(Sink("out"))
        for a, b in ((s0, w0), (s1, w1), (w0, join), (w1, join), (join, sink)):
            graph.connect(a, b)
        graph.freeze()
        snapshot = describe_system(graph.metadata_system)
        owners = {r["owner"] for r in snapshot["registries"]}
        # Sweep areas and the nested bucket indexes have registries too.
        assert {"sweep0", "sweep1", "index"} <= owners
        report = render_report(graph.metadata_system)
        assert "module.probe_fraction" in report
        assert "module.max_bucket_size" in report


class TestRenderReportEdgeCases:
    def test_included_only_with_zero_live_handlers(self):
        """included_only=True with nothing subscribed renders just the
        stats header — no empty per-registry sections."""
        graph, *_ = build()
        report = render_report(graph.metadata_system, included_only=True)
        lines = report.splitlines()
        assert lines[0].startswith("metadata system: ")
        assert len(lines) == 1

    def test_qualifier_formatting_in_report(self):
        """Qualified keys render as name[q0,...] with padding intact."""
        graph, source, fil, sink = build()
        report = render_report(graph.metadata_system)
        assert "stream.input_rate[0]" in report
        # Unqualified keys carry no brackets.
        assert "operator.selectivity[" not in report

    def test_multi_part_qualifier_renders_comma_separated(self, make_owner):
        from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey

        owner = make_owner("n")
        key = MetadataKey("rate", ("out", 1))
        owner.metadata.define(MetadataDefinition(
            key, Mechanism.STATIC, value=3,
        ))
        report = render_report(owner.metadata.system)
        assert "rate[out,1]" in report

    def test_to_json_preserves_value_types(self):
        """Numbers survive as numbers; only non-JSON values are stringified."""
        graph, source, fil, sink = build()
        subscription = fil.metadata.subscribe(md.SELECTIVITY)
        graph.clock.advance_by(30.0)
        parsed = json.loads(to_json(graph.metadata_system))
        registry = next(r for r in parsed["registries"] if r["owner"] == "f")
        item = next(i for i in registry["items"]
                    if i["key"] == "operator.selectivity")
        assert isinstance(item["include_count"], int)
        assert isinstance(item["age"], (int, float))  # not "5.0"
        assert isinstance(item["included"], bool)
        assert isinstance(item["period"], (int, float))
        subscription.cancel()

    def test_to_json_without_indent(self):
        graph, *_ = build()
        text = to_json(graph.metadata_system, indent=None)
        assert "\n" not in text
        json.loads(text)

    def test_telemetry_section_round_trips_through_json(self):
        graph, source, fil, sink = build()
        graph.metadata_system.enable_telemetry()
        subscription = fil.metadata.subscribe(md.SELECTIVITY)
        parsed = json.loads(to_json(graph.metadata_system))
        assert parsed["telemetry"]["enabled"] is True
        assert isinstance(parsed["telemetry"]["events_captured"], int)
        subscription.cancel()
