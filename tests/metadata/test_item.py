"""Tests for metadata keys and definitions."""

from __future__ import annotations

import pytest

from repro.common.errors import MetadataError
from repro.metadata.item import (
    Mechanism,
    MetadataClass,
    MetadataDefinition,
    MetadataKey,
    SelfDep,
)


class TestMetadataKey:
    def test_equality_and_hash(self):
        assert MetadataKey("a.b") == MetadataKey("a.b")
        assert hash(MetadataKey("a.b")) == hash(MetadataKey("a.b"))
        assert MetadataKey("a.b") != MetadataKey("a.c")

    def test_qualifier_distinguishes(self):
        base = MetadataKey("stream.input_rate")
        assert base.q(0) != base.q(1)
        assert base.q(0) != base
        assert base.q(0) == MetadataKey("stream.input_rate", (0,))

    def test_base_strips_qualifier(self):
        key = MetadataKey("x").q(1, 2)
        assert key.base == MetadataKey("x")
        assert MetadataKey("x").base == MetadataKey("x")

    def test_ordering_is_total(self):
        keys = [MetadataKey("b"), MetadataKey("a").q(1), MetadataKey("a")]
        ordered = sorted(keys)
        assert ordered[0] == MetadataKey("a")
        assert ordered[-1] == MetadataKey("b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetadataKey("")

    def test_repr_readable(self):
        assert repr(MetadataKey("a.b")) == "<a.b>"
        assert "0" in repr(MetadataKey("a").q(0))

    def test_usable_as_dict_key(self):
        d = {MetadataKey("a"): 1, MetadataKey("a").q(0): 2}
        assert d[MetadataKey("a")] == 1
        assert d[MetadataKey("a").q(0)] == 2


class TestMetadataDefinition:
    def test_static_needs_value_or_compute(self):
        with pytest.raises(MetadataError):
            MetadataDefinition(MetadataKey("k"), Mechanism.STATIC)

    def test_static_with_value_ok(self):
        definition = MetadataDefinition(MetadataKey("k"), Mechanism.STATIC, value=5)
        assert definition.metadata_class is MetadataClass.STATIC

    def test_dynamic_needs_compute(self):
        with pytest.raises(MetadataError):
            MetadataDefinition(MetadataKey("k"), Mechanism.ON_DEMAND)

    def test_periodic_needs_positive_period(self):
        with pytest.raises(MetadataError):
            MetadataDefinition(MetadataKey("k"), Mechanism.PERIODIC,
                               compute=lambda ctx: 1)
        with pytest.raises(MetadataError):
            MetadataDefinition(MetadataKey("k"), Mechanism.PERIODIC,
                               compute=lambda ctx: 1, period=0)

    def test_dynamic_class_derived(self):
        definition = MetadataDefinition(
            MetadataKey("k"), Mechanism.TRIGGERED, compute=lambda ctx: 1
        )
        assert definition.metadata_class is MetadataClass.DYNAMIC

    def test_dynamic_dependencies_flag(self):
        static = MetadataDefinition(
            MetadataKey("k"), Mechanism.TRIGGERED, compute=lambda ctx: 1,
            dependencies=[SelfDep(MetadataKey("d"))],
        )
        assert not static.dynamic_dependencies
        dynamic = MetadataDefinition(
            MetadataKey("k"), Mechanism.TRIGGERED, compute=lambda ctx: 1,
            dependencies=lambda registry: [SelfDep(MetadataKey("d"))],
        )
        assert dynamic.dynamic_dependencies
