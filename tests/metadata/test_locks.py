"""Tests for the lock policies (Sections 4.2-4.3)."""

from __future__ import annotations

from repro.common.clock import VirtualClock
from repro.common.rwlock import ReentrantRWLock
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey
from repro.metadata.locks import (
    CoarseLockPolicy,
    FineGrainedLockPolicy,
    NoOpLock,
    NoOpLockPolicy,
)
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import VirtualTimeScheduler

A = MetadataKey("a")
B = MetadataKey("b")


class _Owner:
    name = "n"


class TestFineGrainedPolicy:
    def test_distinct_locks_per_level(self):
        policy = FineGrainedLockPolicy()
        graph = policy.graph_lock()
        node = policy.node_lock(_Owner())

        class FakeHandler:
            key = A

        item = policy.item_lock(FakeHandler())
        assert graph is not node is not item
        assert policy.lock_count == 3

    def test_aggregate_stats_sums_all_locks(self):
        policy = FineGrainedLockPolicy()
        l1, l2 = policy.graph_lock(), policy.node_lock(_Owner())
        with l1.read():
            pass
        with l2.write():
            pass
        stats = policy.aggregate_stats()
        assert stats.read_acquired == 1
        assert stats.write_acquired == 1

    def test_hot_locks_skips_idle_and_orders_by_activity(self):
        policy = FineGrainedLockPolicy()
        graph = policy.graph_lock()
        node = policy.node_lock(_Owner())
        policy.item_lock(type("H", (), {"key": A})())  # never touched
        with graph.read():
            pass
        for _ in range(3):
            with node.write():
                pass
        hot = policy.hot_locks()
        assert [entry["name"] for entry in hot] == ["node:n", "graph"]
        assert hot[0]["write_acquired"] == 3
        assert set(hot[0]) == {
            "name", "read_acquired", "write_acquired", "read_contended",
            "write_contended", "read_wait_seconds", "write_wait_seconds",
        }

    def test_hot_locks_respects_limit(self):
        policy = FineGrainedLockPolicy()
        for i in range(8):
            lock = policy.node_lock(type("O", (), {"name": f"n{i}"})())
            with lock.read():
                pass
        assert len(policy.hot_locks(limit=3)) == 3


class TestCoarsePolicy:
    def test_single_shared_lock(self):
        policy = CoarseLockPolicy()

        class FakeHandler:
            key = A

        assert policy.graph_lock() is policy.node_lock(_Owner())
        assert policy.graph_lock() is policy.item_lock(FakeHandler())

    def test_hot_locks_single_entry_when_used(self):
        policy = CoarseLockPolicy()
        assert policy.hot_locks() == []
        with policy.graph_lock().write():
            pass
        hot = policy.hot_locks()
        assert [entry["name"] for entry in hot] == ["global"]
        assert hot[0]["write_acquired"] == 1

    def test_noop_policy_has_no_hot_locks(self):
        assert NoOpLockPolicy().hot_locks() == []


class TestNoOpPolicy:
    def test_noop_locks_do_nothing(self):
        policy = NoOpLockPolicy()
        lock = policy.graph_lock()
        assert isinstance(lock, NoOpLock)
        with lock.read():
            with lock.write():  # upgrade would deadlock a real lock
                pass
        assert lock.acquire_write() is True
        lock.release_write()


class TestPolicyInSystem:
    def _system(self, policy):
        clock = VirtualClock()
        system = MetadataSystem(clock, VirtualTimeScheduler(clock), lock_policy=policy)
        owner = _Owner()
        registry = MetadataRegistry(owner, system)
        owner.metadata = registry
        return system, registry

    def test_only_included_items_get_real_locks(self):
        """Section 4.3: only locks of currently included items are used."""
        policy = FineGrainedLockPolicy()
        system, registry = self._system(policy)
        registry.define(MetadataDefinition(A, Mechanism.STATIC, value=1))
        registry.define(MetadataDefinition(B, Mechanism.STATIC, value=2))
        locks_before = policy.lock_count  # graph + node lock
        subscription = registry.subscribe(A)
        assert policy.lock_count == locks_before + 1  # one item lock, not two
        subscription.cancel()

    def test_default_policy_is_noop(self):
        clock = VirtualClock()
        system = MetadataSystem(clock, VirtualTimeScheduler(clock))
        assert isinstance(system.lock_policy, NoOpLockPolicy)

    def test_real_locks_guard_handler_access(self):
        policy = FineGrainedLockPolicy()
        system, registry = self._system(policy)
        registry.define(MetadataDefinition(A, Mechanism.STATIC, value=5))
        subscription = registry.subscribe(A)
        assert subscription.get() == 5
        handler_lock = subscription.handler._lock
        assert isinstance(handler_lock, ReentrantRWLock)
        assert handler_lock.stats.read_acquired >= 1
        subscription.cancel()
