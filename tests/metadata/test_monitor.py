"""Tests for monitoring probes (Section 4.4.1)."""

from __future__ import annotations

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import MetadataError
from repro.metadata.monitor import (
    CostProbe,
    CounterProbe,
    GaugeProbe,
    MeanProbe,
    RateProbe,
)


class TestActivation:
    def test_refcounted_activation(self, clock):
        probe = CounterProbe("c", clock)
        probe.activate()
        probe.activate()
        probe.deactivate()
        assert probe.active
        probe.deactivate()
        assert not probe.active

    def test_over_deactivation_raises(self, clock):
        probe = CounterProbe("c", clock)
        with pytest.raises(MetadataError):
            probe.deactivate()

    def test_activation_resets_state(self, clock):
        probe = CounterProbe("c", clock)
        probe.activate()
        probe.record(5)
        probe.deactivate()
        probe.activate()
        assert probe.total == 0


class TestCounterProbe:
    def test_records_only_while_active(self, clock):
        probe = CounterProbe("c", clock)
        probe.record(3)
        assert probe.total == 0
        probe.activate()
        probe.record(3)
        probe.record()
        assert probe.total == 4


class TestRateProbe:
    def test_periodic_rate(self, clock):
        probe = RateProbe("r", clock)
        probe.activate()
        for _ in range(5):
            probe.record()
        clock.advance_by(50.0)
        assert probe.rate_and_reset() == pytest.approx(0.1)
        # Window restarted: immediate re-read is zero.
        assert probe.unsafe_peek_rate() == 0.0

    def test_unsafe_interleaved_reads_interfere(self, clock):
        """The Figure 4 failure mode at probe level: two consumers calling
        the resetting read destroy each other's measurement window."""
        probe = RateProbe("r", clock)
        probe.activate()
        # 0.1 elements per time unit for 100 units.
        for _ in range(5):
            probe.record()
        clock.advance_by(50.0)
        first = probe.unsafe_rate_and_reset()   # consumer 1 at t=50
        clock.advance_by(1.0)
        probe.record()
        second = probe.unsafe_rate_and_reset()  # consumer 2 at t=51
        assert first == pytest.approx(0.1)
        assert second == pytest.approx(1.0)     # wildly wrong vs true 0.1


class TestGaugeProbe:
    def test_reads_current_value(self):
        state = {"n": 1}
        probe = GaugeProbe("g", lambda: state["n"])
        probe.activate()
        assert probe.read() == 1
        state["n"] = 7
        assert probe.read() == 7

    def test_read_while_inactive_raises(self):
        probe = GaugeProbe("g", lambda: 0)
        with pytest.raises(MetadataError):
            probe.read()


class TestCostProbe:
    def test_usage_per_time_unit(self, clock):
        probe = CostProbe("cpu", clock)
        probe.activate()
        probe.charge(10.0)
        probe.charge(10.0)
        clock.advance_by(40.0)
        assert probe.usage_and_reset() == pytest.approx(0.5)
        clock.advance_by(10.0)
        assert probe.usage_and_reset() == 0.0

    def test_zero_elapsed(self, clock):
        probe = CostProbe("cpu", clock)
        probe.activate()
        probe.charge(5.0)
        assert probe.usage_and_reset() == 0.0


class TestMeanProbe:
    def test_mean_and_reset(self):
        probe = MeanProbe("m")
        probe.activate()
        probe.record(10.0)
        probe.record(20.0)
        assert probe.mean_and_reset() == pytest.approx(15.0)

    def test_empty_window_repeats_last_mean(self):
        probe = MeanProbe("m")
        probe.activate()
        probe.record(10.0)
        assert probe.mean_and_reset() == 10.0
        assert probe.mean_and_reset() == 10.0  # no new samples

    def test_inactive_records_nothing(self):
        probe = MeanProbe("m")
        probe.record(5.0)
        probe.activate()
        assert probe.mean_and_reset() == 0.0
