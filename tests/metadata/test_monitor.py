"""Tests for monitoring probes (Section 4.4.1)."""

from __future__ import annotations

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import MetadataError
from repro.metadata.monitor import (
    CostProbe,
    CounterProbe,
    GaugeProbe,
    MeanProbe,
    Probe,
    RateProbe,
)


class TestActivation:
    def test_refcounted_activation(self, clock):
        probe = CounterProbe("c", clock)
        probe.activate()
        probe.activate()
        probe.deactivate()
        assert probe.active
        probe.deactivate()
        assert not probe.active

    def test_over_deactivation_raises(self, clock):
        probe = CounterProbe("c", clock)
        with pytest.raises(MetadataError):
            probe.deactivate()

    def test_activation_resets_state(self, clock):
        probe = CounterProbe("c", clock)
        probe.activate()
        probe.record(5)
        probe.deactivate()
        probe.activate()
        assert probe.total == 0


class TestCounterProbe:
    def test_records_only_while_active(self, clock):
        probe = CounterProbe("c", clock)
        probe.record(3)
        assert probe.total == 0
        probe.activate()
        probe.record(3)
        probe.record()
        assert probe.total == 4


class TestRateProbe:
    def test_periodic_rate(self, clock):
        probe = RateProbe("r", clock)
        probe.activate()
        for _ in range(5):
            probe.record()
        clock.advance_by(50.0)
        assert probe.rate_and_reset() == pytest.approx(0.1)
        # Window restarted: immediate re-read is zero.
        assert probe.unsafe_peek_rate() == 0.0

    def test_unsafe_interleaved_reads_interfere(self, clock):
        """The Figure 4 failure mode at probe level: two consumers calling
        the resetting read destroy each other's measurement window."""
        probe = RateProbe("r", clock)
        probe.activate()
        # 0.1 elements per time unit for 100 units.
        for _ in range(5):
            probe.record()
        clock.advance_by(50.0)
        first = probe.unsafe_rate_and_reset()   # consumer 1 at t=50
        clock.advance_by(1.0)
        probe.record()
        second = probe.unsafe_rate_and_reset()  # consumer 2 at t=51
        assert first == pytest.approx(0.1)
        assert second == pytest.approx(1.0)     # wildly wrong vs true 0.1


class TestGaugeProbe:
    def test_reads_current_value(self):
        state = {"n": 1}
        probe = GaugeProbe("g", lambda: state["n"])
        probe.activate()
        assert probe.read() == 1
        state["n"] = 7
        assert probe.read() == 7

    def test_read_while_inactive_raises(self):
        probe = GaugeProbe("g", lambda: 0)
        with pytest.raises(MetadataError):
            probe.read()


class TestCostProbe:
    def test_usage_per_time_unit(self, clock):
        probe = CostProbe("cpu", clock)
        probe.activate()
        probe.charge(10.0)
        probe.charge(10.0)
        clock.advance_by(40.0)
        assert probe.usage_and_reset() == pytest.approx(0.5)
        clock.advance_by(10.0)
        assert probe.usage_and_reset() == 0.0

    def test_zero_elapsed(self, clock):
        probe = CostProbe("cpu", clock)
        probe.activate()
        probe.charge(5.0)
        assert probe.usage_and_reset() == 0.0


class TestMeanProbe:
    def test_mean_and_reset(self):
        probe = MeanProbe("m")
        probe.activate()
        probe.record(10.0)
        probe.record(20.0)
        assert probe.mean_and_reset() == pytest.approx(15.0)

    def test_empty_window_repeats_last_mean(self):
        probe = MeanProbe("m")
        probe.activate()
        probe.record(10.0)
        assert probe.mean_and_reset() == 10.0
        assert probe.mean_and_reset() == 10.0  # no new samples

    def test_inactive_records_nothing(self):
        probe = MeanProbe("m")
        probe.record(5.0)
        probe.activate()
        assert probe.mean_and_reset() == 0.0


class TestActivationThreadSafety:
    @pytest.mark.stress
    def test_concurrent_activation_refcount_is_exact(self, clock):
        """Interleaved activate/deactivate from many threads must keep the
        reference count exact: losing one activation leaves a probe inactive
        while included metadata depends on it."""
        from repro.common.racecheck import RaceCheck

        probe = CounterProbe("c", clock)
        iterations = 200

        def churn(worker, i):
            probe.activate()
            probe.deactivate()

        check = RaceCheck(iterations=iterations, timeout=30.0)
        check.add(churn, threads=4)
        check.run()
        assert probe._activation_count == 0
        assert not probe.active

    @pytest.mark.stress
    def test_activation_hooks_run_once_per_transition(self, clock):
        """_on_activate/_on_deactivate fire exactly once per 0<->1 crossing
        even when the crossing is contended."""
        from repro.common.racecheck import RaceCheck

        class HookCounting(Probe):
            def __init__(self) -> None:
                super().__init__("h")
                self.activations = 0
                self.deactivations = 0

            def _on_activate(self) -> None:
                self.activations += 1  # runs under the probe mutex

            def _on_deactivate(self) -> None:
                self.deactivations += 1

        probe = HookCounting()

        def churn(worker, i):
            probe.activate()
            probe.deactivate()

        check = RaceCheck(iterations=200, timeout=30.0)
        check.add(churn, threads=4)
        check.run()
        # Every completed 0->1 crossing has a matching 1->0 crossing.
        assert probe.activations == probe.deactivations
        assert probe.activations >= 1
        assert not probe.active


class TestRateProbeDeduplication:
    def test_unsafe_alias_delegates_to_rate_and_reset(self, clock):
        """unsafe_rate_and_reset is the same computation under a warning
        name, not a divergent copy (the byte-identical bodies were deduped)."""
        probe = RateProbe("r", clock)
        probe.activate()
        for _ in range(4):
            probe.record()
        clock.advance_by(40.0)
        assert probe.unsafe_rate_and_reset() == pytest.approx(0.1)
        # The alias resets the shared window exactly like rate_and_reset.
        clock.advance_by(10.0)
        assert probe.rate_and_reset() == 0.0
        assert RateProbe.unsafe_rate_and_reset is not RateProbe.rate_and_reset


class TestProbeTelemetry:
    def test_activation_transitions_traced(self, clock):
        from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey
        from repro.metadata.registry import MetadataRegistry, MetadataSystem
        from repro.metadata.scheduling import VirtualTimeScheduler

        system = MetadataSystem(clock, VirtualTimeScheduler(clock))

        class Owner:
            name = "node"

        owner = Owner()
        owner.metadata = MetadataRegistry(owner, system)
        probe = owner.metadata.add_probe(CounterProbe("elements", clock))
        key = MetadataKey("count")
        owner.metadata.define(MetadataDefinition(
            key, Mechanism.ON_DEMAND, compute=lambda ctx: probe.total,
            monitors=("elements",),
        ))
        tel = system.enable_telemetry()
        s1 = owner.metadata.subscribe(key)
        s2 = owner.metadata.subscribe(key)  # shared: no second activation
        s2.cancel()
        s1.cancel()
        activated = tel.bus.events(kind="probe.activated")
        deactivated = tel.bus.events(kind="probe.deactivated")
        assert [(e.node, e.name) for e in activated] == [("node", "elements")]
        assert [(e.node, e.name) for e in deactivated] == [("node", "elements")]
        assert tel.metrics.gauge("probes_active").value == 0
