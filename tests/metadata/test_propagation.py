"""Tests for triggered-update propagation (Section 3.2.3)."""

from __future__ import annotations

import pytest

from repro.metadata.item import (
    Mechanism,
    MetadataDefinition,
    MetadataKey,
    NodeDep,
    SelfDep,
)
from repro.metadata.propagation import PropagationEngine

A, B, C, D, E = (MetadataKey(k) for k in "abcde")


def make_periodic(registry, key, values, period=10.0):
    iterator = iter(values)
    registry.define(MetadataDefinition(
        key, Mechanism.PERIODIC, period=period, compute=lambda ctx: next(iterator),
    ))


class TestWaveOrdering:
    def test_diamond_recomputed_once_per_wave(self, make_owner, clock, system):
        """D depends on B and C which both depend on A: a change of A must
        recompute D exactly once, after both B and C (Section 3.2.3's
        'updates have to be performed in the right order')."""
        owner = make_owner()
        make_periodic(owner.metadata, A, [1, 2])
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(A) * 10,
            dependencies=[SelfDep(A)],
        ))
        owner.metadata.define(MetadataDefinition(
            C, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(A) * 100,
            dependencies=[SelfDep(A)],
        ))
        top_values = []

        def compute_top(ctx):
            value = ctx.value(B) + ctx.value(C)
            top_values.append(value)
            return value

        owner.metadata.define(MetadataDefinition(
            D, Mechanism.TRIGGERED, compute=compute_top,
            dependencies=[SelfDep(B), SelfDep(C)],
        ))
        subscription = owner.metadata.subscribe(D)
        assert subscription.get() == 110
        top_values.clear()
        clock.advance_by(10.0)  # A: 1 -> 2
        assert subscription.get() == 220
        # Exactly one recomputation, never the inconsistent mix 210/120.
        assert top_values == [220]
        subscription.cancel()

    def test_deep_chain_propagates(self, make_owner, clock):
        owner = make_owner()
        make_periodic(owner.metadata, A, [1, 5])
        previous = A
        for key in (B, C, D, E):
            owner.metadata.define(MetadataDefinition(
                key, Mechanism.TRIGGERED,
                compute=lambda ctx, dep=previous: ctx.value(dep) + 1,
                dependencies=[SelfDep(previous)],
            ))
            previous = key
        subscription = owner.metadata.subscribe(E)
        assert subscription.get() == 5  # 1 + 4 hops
        clock.advance_by(10.0)
        assert subscription.get() == 9  # 5 + 4 hops
        subscription.cancel()

    def test_unchanged_intermediate_cuts_propagation(self, make_owner, clock, system):
        """B clamps A; if B's value does not change, C is not recomputed."""
        owner = make_owner()
        make_periodic(owner.metadata, A, [1, 2, 3, 4, 5])
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED,
            compute=lambda ctx: min(ctx.value(A), 2),  # saturates at 2
            dependencies=[SelfDep(A)],
        ))
        owner.metadata.define(MetadataDefinition(
            C, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(B),
            dependencies=[SelfDep(B)],
        ))
        subscription = owner.metadata.subscribe(C)
        c_handler = owner.metadata.handler(C)
        clock.advance_by(40.0)  # A runs 1,2,3,4; B saturates at 2 from t=10
        assert subscription.get() == 2
        # C recomputed once at inclusion and once when B changed 1->2; the
        # later unchanged B values were suppressed.
        assert c_handler.compute_count == 2
        assert system.propagation.suppressed_count >= 1
        subscription.cancel()

    def test_cross_node_propagation(self, make_owner, clock):
        """Inter-node dependency: updates propagate through the query graph."""
        upstream, downstream = make_owner("up"), make_owner("down")
        make_periodic(upstream.metadata, A, [1, 7])
        downstream.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(A) * 2,
            dependencies=[NodeDep(upstream, A)],
        ))
        subscription = downstream.metadata.subscribe(B)
        assert subscription.get() == 2
        clock.advance_by(10.0)
        assert subscription.get() == 14
        subscription.cancel()

    def test_duplicate_dependency_notified_once(self, make_owner, clock):
        """An item depending twice on the same upstream item is refreshed
        once per change (duplicate-subscription detection, Section 3.2.3)."""
        owner = make_owner()
        make_periodic(owner.metadata, A, [1, 2])
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED,
            compute=lambda ctx: sum(ctx.values(A)),
            dependencies=[SelfDep(A), SelfDep(A)],
        ))
        subscription = owner.metadata.subscribe(B)
        handler_b = subscription.handler
        handler_a = owner.metadata.handler(A)
        # A's counter was incremented once per edge...
        assert handler_a.include_count == 2
        # ...but B appears once in A's dependents.
        assert list(handler_a.dependents()).count(handler_b) == 1
        compute_before = handler_b.compute_count
        clock.advance_by(10.0)
        assert handler_b.compute_count == compute_before + 1
        assert subscription.get() == 4
        subscription.cancel()


class TestEngineAccounting:
    def test_stats_exposed(self, make_owner, clock, system):
        owner = make_owner()
        make_periodic(owner.metadata, A, [1, 2, 3])
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(A),
            dependencies=[SelfDep(A)],
        ))
        subscription = owner.metadata.subscribe(B)
        clock.advance_by(20.0)
        stats = system.propagation.stats()
        assert stats["waves"] >= 2
        assert stats["refreshes"] >= 2
        subscription.cancel()

    def test_periodic_dependent_not_refreshed_by_wave(self, make_owner, clock):
        """Periodic handlers keep their own cadence; only triggered handlers
        react to dependency changes."""
        owner = make_owner()
        make_periodic(owner.metadata, A, [1, 2, 3, 4, 5], period=10.0)
        counter = {"n": 0}

        def compute_b(ctx):
            counter["n"] += 1
            return ctx.value(A)

        owner.metadata.define(MetadataDefinition(
            B, Mechanism.PERIODIC, period=100.0, compute=compute_b,
            dependencies=[SelfDep(A)],
        ))
        subscription = owner.metadata.subscribe(B)
        clock.advance_by(40.0)  # A updated 4x; B's own period not yet due
        assert counter["n"] == 1  # only the seed computation
        subscription.cancel()


class _FakeHandler:
    """Minimal handler standing in for wave-collection unit tests."""

    def __init__(self, name, reacts=True):
        self.name = name
        self.removed = False
        self.breaker = None
        self.reacts = reacts
        self.reaction_calls = 0
        self.recomputes = 0
        self.dependency_handlers = []
        self._dependents = []

    def dependents(self):
        return tuple(self._dependents)

    def depends_on(self, *handlers):
        for handler in handlers:
            handler._dependents.append(self)
            self.dependency_handlers.append((None, handler))

    def on_dependency_changed(self, dependency):
        self.reaction_calls += 1
        return self.reacts

    def recompute_for_propagation(self):
        self.recomputes += 1
        return True

    @property
    def propagates_always(self):
        return False

    def __repr__(self):
        return f"_FakeHandler({self.name})"


class TestWaveCollection:
    def test_reaction_hook_memoized_per_edge(self):
        """Longest-path relaxation revisits nodes when depths grow; the
        on_dependency_changed hook must still run at most once per edge."""
        engine = PropagationEngine()
        source = _FakeHandler("src")
        left = _FakeHandler("left")
        mid = _FakeHandler("mid")
        sink = _FakeHandler("sink")
        # src -> left -> mid -> sink, plus shortcuts src -> mid and
        # src -> sink: sink's depth is relaxed repeatedly.
        left.depends_on(source)
        mid.depends_on(source, left)
        sink.depends_on(source, mid)
        engine.value_changed(source)
        for handler in (left, mid, sink):
            assert handler.recomputes == 1
        # Edges: src->left, src->mid, src->sink, left->mid, mid->sink = 5
        total_calls = left.reaction_calls + mid.reaction_calls + sink.reaction_calls
        assert total_calls == 5

    def test_wave_order_is_topological(self):
        engine = PropagationEngine()
        order = []

        class Recording(_FakeHandler):
            def recompute_for_propagation(self):
                order.append(self.name)
                return super().recompute_for_propagation()

        source = Recording("src")
        b = Recording("b")
        c = Recording("c")
        d = Recording("d")
        b.depends_on(source)
        c.depends_on(source, b)
        d.depends_on(b, c)
        engine.value_changed(source)
        assert order == ["b", "c", "d"]

    def test_concurrently_removed_handler_counts_as_suppressed(self):
        engine = PropagationEngine()
        source = _FakeHandler("src")
        dep = _FakeHandler("dep")
        dep.depends_on(source)

        class Vanishing(_FakeHandler):
            def recompute_for_propagation(self):
                from repro.common.errors import MetadataNotIncludedError

                raise MetadataNotIncludedError("removed mid-wave")

        ghost = Vanishing("ghost")
        ghost.depends_on(source)
        engine.value_changed(source)
        stats = engine.stats()
        assert stats["errors"] == 0
        assert stats["suppressed"] == 1
        assert dep.recomputes == 1


class TestNestedEvents:
    def test_event_during_wave_queued_not_recursive(self, make_owner):
        """A compute that fires another event must not re-enter the engine."""
        owner = make_owner()
        state = {"x": 1, "y": 10}
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, compute=lambda ctx: state["x"],
        ))
        owner.metadata.define(MetadataDefinition(
            C, Mechanism.ON_DEMAND, compute=lambda ctx: state["y"],
        ))

        def compute_b(ctx):
            # Refreshing B bumps y and fires C's event: a nested wave.
            state["y"] += 1
            owner.metadata.notify_changed(C)
            return ctx.value(A)

        owner.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED, compute=compute_b, dependencies=[SelfDep(A)],
        ))
        owner.metadata.define(MetadataDefinition(
            D, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(C),
            dependencies=[SelfDep(C)],
        ))
        sb = owner.metadata.subscribe(B)
        sd = owner.metadata.subscribe(D)
        state["x"] = 2
        owner.metadata.notify_changed(A)
        # B refreshed; the nested C event was queued and D refreshed after.
        assert sb.get() == 2
        assert sd.get() == state["y"]
        sb.cancel()
        sd.cancel()
