"""Tests for the publish-subscribe registry (Section 2)."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    DuplicateMetadataError,
    MetadataError,
    MetadataNotIncludedError,
    SubscriptionError,
    UnknownMetadataError,
)
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep
from repro.metadata.monitor import CounterProbe

A = MetadataKey("a")
B = MetadataKey("b")
C = MetadataKey("c")


def define_static(registry, key, value):
    registry.define(MetadataDefinition(key, Mechanism.STATIC, value=value))


class TestSubscription:
    def test_subscribe_returns_value(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 42)
        subscription = owner.metadata.subscribe(A)
        assert subscription.get() == 42

    def test_unknown_key_raises(self, make_owner):
        owner = make_owner()
        with pytest.raises(UnknownMetadataError):
            owner.metadata.subscribe(A)

    def test_subscription_is_shared_handler(self, make_owner):
        """Second subscription returns the existing handler (Section 2.1)."""
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        s1 = owner.metadata.subscribe(A)
        s2 = owner.metadata.subscribe(A)
        assert s1.handler is s2.handler
        assert s1.handler.include_count == 2
        assert s1.handler.consumer_count == 2

    def test_handler_removed_when_counter_zero(self, make_owner, system):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        s1 = owner.metadata.subscribe(A)
        s2 = owner.metadata.subscribe(A)
        s1.cancel()
        assert owner.metadata.is_included(A)
        s2.cancel()
        assert not owner.metadata.is_included(A)
        assert system.included_handler_count == 0

    def test_cancel_twice_raises(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        subscription = owner.metadata.subscribe(A)
        subscription.cancel()
        with pytest.raises(SubscriptionError):
            subscription.cancel()

    def test_get_after_cancel_raises(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        subscription = owner.metadata.subscribe(A)
        subscription.cancel()
        with pytest.raises(SubscriptionError):
            subscription.get()

    def test_context_manager_cancels(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        with owner.metadata.subscribe(A) as subscription:
            assert subscription.get() == 1
        assert not owner.metadata.is_included(A)

    def test_resubscribe_after_removal_creates_new_handler(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        s1 = owner.metadata.subscribe(A)
        h1 = s1.handler
        s1.cancel()
        s2 = owner.metadata.subscribe(A)
        assert s2.handler is not h1
        s2.cancel()

    def test_registry_get_requires_inclusion(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        with pytest.raises(MetadataNotIncludedError):
            owner.metadata.get(A)
        subscription = owner.metadata.subscribe(A)
        assert owner.metadata.get(A) == 1
        subscription.cancel()


class TestDiscovery:
    def test_available_and_included_keys(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        define_static(owner.metadata, B, 2)
        assert set(owner.metadata.available_keys()) == {A, B}
        assert owner.metadata.included_keys() == []
        subscription = owner.metadata.subscribe(A)
        assert owner.metadata.included_keys() == [A]
        subscription.cancel()

    def test_describe(self, make_owner):
        owner = make_owner()
        definition = MetadataDefinition(A, Mechanism.STATIC, value=1,
                                        description="the answer")
        owner.metadata.define(definition)
        assert owner.metadata.describe(A) is definition
        with pytest.raises(UnknownMetadataError):
            owner.metadata.describe(B)


class TestDefineAndOverride:
    def test_duplicate_define_rejected(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        with pytest.raises(DuplicateMetadataError):
            define_static(owner.metadata, A, 2)

    def test_override_replaces_definition(self, make_owner):
        """Metadata inheritance: subclasses may redefine items (Sec. 4.4.2)."""
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        owner.metadata.define(
            MetadataDefinition(A, Mechanism.STATIC, value=99), override=True
        )
        subscription = owner.metadata.subscribe(A)
        assert subscription.get() == 99
        subscription.cancel()

    def test_override_while_included_rejected(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        subscription = owner.metadata.subscribe(A)
        with pytest.raises(MetadataError):
            owner.metadata.define(
                MetadataDefinition(A, Mechanism.STATIC, value=2), override=True
            )
        subscription.cancel()

    def test_undefine(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        owner.metadata.undefine(A)
        assert owner.metadata.available_keys() == []

    def test_undefine_unknown_raises(self, make_owner):
        owner = make_owner()
        with pytest.raises(UnknownMetadataError):
            owner.metadata.undefine(A)

    def test_undefine_while_included_rejected(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, A, 1)
        subscription = owner.metadata.subscribe(A)
        with pytest.raises(MetadataError):
            owner.metadata.undefine(A)
        subscription.cancel()


class TestProbeActivation:
    def test_probe_activated_on_include_deactivated_on_exclude(
        self, make_owner, clock
    ):
        owner = make_owner()
        probe = owner.metadata.add_probe(CounterProbe("events", clock))
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, monitors=("events",),
            compute=lambda ctx: probe.total,
        ))
        assert not probe.active
        subscription = owner.metadata.subscribe(A)
        assert probe.active
        probe.record(3)
        assert subscription.get() == 3
        subscription.cancel()
        assert not probe.active

    def test_probe_shared_by_two_items(self, make_owner, clock):
        owner = make_owner()
        probe = owner.metadata.add_probe(CounterProbe("events", clock))
        for key in (A, B):
            owner.metadata.define(MetadataDefinition(
                key, Mechanism.ON_DEMAND, monitors=("events",),
                compute=lambda ctx: probe.total,
            ))
        s1 = owner.metadata.subscribe(A)
        s2 = owner.metadata.subscribe(B)
        s1.cancel()
        assert probe.active  # still needed by B
        s2.cancel()
        assert not probe.active

    def test_inactive_probe_records_nothing(self, make_owner, clock):
        owner = make_owner()
        probe = owner.metadata.add_probe(CounterProbe("events", clock))
        probe.record(5)
        assert probe.total == 0

    def test_duplicate_probe_rejected(self, make_owner, clock):
        owner = make_owner()
        owner.metadata.add_probe(CounterProbe("events", clock))
        with pytest.raises(DuplicateMetadataError):
            owner.metadata.add_probe(CounterProbe("events", clock))

    def test_unknown_probe_in_definition_fails_subscribe(self, make_owner):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.ON_DEMAND, monitors=("missing",),
            compute=lambda ctx: 1,
        ))
        with pytest.raises(MetadataError):
            owner.metadata.subscribe(A)


class TestFailureRollback:
    def test_failing_compute_rolls_back_inclusion(self, make_owner, system):
        owner = make_owner()

        def boom(ctx):
            raise RuntimeError("broken provider")

        define_static(owner.metadata, B, 1)
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=boom, dependencies=[SelfDep(B)],
        ))
        with pytest.raises(MetadataError):
            owner.metadata.subscribe(A)
        # Nothing remains included: the failed item and its dependency both
        # rolled back.
        assert owner.metadata.included_keys() == []
        assert system.included_handler_count == 0

    def test_failed_subscribe_leaves_shared_dependency_for_others(self, make_owner):
        owner = make_owner()
        define_static(owner.metadata, B, 1)
        keep = owner.metadata.subscribe(B)

        def boom(ctx):
            raise RuntimeError("broken")

        owner.metadata.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=boom, dependencies=[SelfDep(B)],
        ))
        with pytest.raises(MetadataError):
            owner.metadata.subscribe(A)
        assert owner.metadata.is_included(B)
        assert keep.get() == 1
        keep.cancel()


class TestSubscribeAll:
    def test_subscribe_all_includes_everything(self, make_owner, system):
        owners = [make_owner(f"n{i}") for i in range(3)]
        for owner in owners:
            define_static(owner.metadata, A, 1)
            define_static(owner.metadata, B, 2)
        subscriptions = system.subscribe_all()
        assert len(subscriptions) == 6
        assert system.included_handler_count == 6
        for subscription in subscriptions:
            subscription.cancel()
        assert system.included_handler_count == 0
