"""Include/exclude rollback under failure (registry._include's unwind paths).

A failed subscribe must leave the system exactly as it was: shared
transitive dependencies keep their pre-failure counters, probes are
deactivated, periodic tasks are unregistered, and the global accounting in
``MetadataSystem.stats()`` stays balanced.
"""

from __future__ import annotations

import pytest

from repro.common.errors import HandlerError
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep
from repro.metadata.monitor import Probe

A = MetadataKey("a")
C = MetadataKey("c")
E = MetadataKey("e")
F = MetadataKey("f")


def _failing(ctx):
    raise RuntimeError("seed computation fails")


class TestSharedTransitiveDependencyRollback:
    def test_shared_dep_counter_survives_sibling_failure(self, make_owner, system):
        """F depends on [C, E]; C is already shared with A; E's inclusion
        fails.  C must drop back to exactly its pre-subscribe counter."""
        owner = make_owner()
        registry = owner.metadata
        registry.define(MetadataDefinition(C, Mechanism.ON_DEMAND, compute=lambda ctx: 1))
        registry.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(C),
            dependencies=[SelfDep(C)],
        ))
        registry.define(MetadataDefinition(E, Mechanism.TRIGGERED, compute=_failing))
        registry.define(MetadataDefinition(
            F, Mechanism.TRIGGERED,
            compute=lambda ctx: ctx.value(C),
            dependencies=[SelfDep(C), SelfDep(E)],
        ))
        sub_a = registry.subscribe(A)
        assert registry.handler(C).include_count == 1
        baseline = system.stats()

        with pytest.raises(HandlerError):
            registry.subscribe(F)

        assert registry.handler(C).include_count == 1
        assert not registry.is_included(E)
        assert not registry.is_included(F)
        # No handler leaked, none double-removed.
        assert system.stats()["handlers_created"] == baseline["handlers_created"]
        assert system.stats()["handlers_removed"] == baseline["handlers_removed"]
        # The pre-existing subscription still works.
        assert sub_a.get() == 1
        sub_a.cancel()
        assert system.included_handler_count == 0

    def test_failing_dep_probes_deactivated(self, make_owner, system):
        """E lists monitoring probes; its failed inclusion must deactivate
        them again (they are activated before on_included runs)."""
        owner = make_owner()
        registry = owner.metadata
        probe = registry.add_probe(Probe("e-probe"))
        registry.define(MetadataDefinition(
            E, Mechanism.TRIGGERED, compute=_failing, monitors=("e-probe",),
        ))
        registry.define(MetadataDefinition(
            F, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(E),
            dependencies=[SelfDep(E)],
        ))
        with pytest.raises(HandlerError):
            registry.subscribe(F)
        assert probe.active is False
        assert probe._activation_count == 0
        assert system.included_handler_count == 0

    def test_periodic_dep_task_unregistered_on_parent_failure(self, make_owner, system):
        """E (periodic) includes fine and registers a scheduler task; its
        parent F then fails — the unwind must unregister E's task."""
        owner = make_owner()
        registry = owner.metadata
        registry.define(MetadataDefinition(
            E, Mechanism.PERIODIC, period=5.0, compute=lambda ctx: ctx.now,
        ))

        def failing_parent(ctx):
            raise RuntimeError("parent seed fails")

        registry.define(MetadataDefinition(
            F, Mechanism.TRIGGERED, compute=failing_parent,
            dependencies=[SelfDep(E)],
        ))
        assert system.scheduler.active_task_count() == 0
        with pytest.raises(HandlerError):
            registry.subscribe(F)
        assert system.scheduler.active_task_count() == 0
        assert not registry.is_included(E)
        assert not registry.is_included(F)
        stats = system.stats()
        # E was fully created and fully removed; F never completed creation.
        assert stats["handlers_created"] == stats["handlers_removed"] == 1
        assert stats["handlers_included"] == 0

    def test_dependents_detached_after_rollback(self, make_owner, system):
        """The failed parent must not linger in its dependencies' dependent
        sets — otherwise later waves would touch a dead handler."""
        owner = make_owner()
        registry = owner.metadata
        registry.define(MetadataDefinition(C, Mechanism.ON_DEMAND, compute=lambda ctx: 1))
        registry.define(MetadataDefinition(
            A, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(C),
            dependencies=[SelfDep(C)],
        ))
        registry.define(MetadataDefinition(
            F, Mechanism.TRIGGERED, compute=_failing, dependencies=[SelfDep(C)],
        ))
        sub_a = registry.subscribe(A)
        with pytest.raises(HandlerError):
            registry.subscribe(F)
        c_handler = registry.handler(C)
        assert [h.key for h in c_handler.dependents()] == [A]
        # A wave over C still works and reaches only live handlers.
        registry.notify_changed(C)
        assert system.propagation.stats()["errors"] == 0
        sub_a.cancel()
        assert system.included_handler_count == 0
