"""Tests for periodic-update schedulers (Sections 3.2.2, 4.3)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.clock import SystemClock, VirtualClock
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import ThreadedScheduler, VirtualTimeScheduler

A = MetadataKey("a")
B = MetadataKey("b")


class _Owner:
    name = "owner"


def make_system_with_threaded(pool_size: int):
    clock = SystemClock()
    scheduler = ThreadedScheduler(clock, pool_size=pool_size)
    system = MetadataSystem(clock, scheduler)
    owner = _Owner()
    registry = MetadataRegistry(owner, system)
    owner.metadata = registry
    return clock, scheduler, registry


class TestVirtualTimeScheduler:
    def test_fires_on_grid(self, make_owner, clock, system):
        owner = make_owner()
        ticks = []
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=5.0,
            compute=lambda ctx: ticks.append(ctx.now),
        ))
        subscription = owner.metadata.subscribe(A)
        clock.advance_by(17.0)
        assert ticks[1:] == [5.0, 10.0, 15.0]
        subscription.cancel()

    def test_task_counting(self, make_owner, clock, system):
        owner = make_owner()
        for key, period in ((A, 5.0), (B, 7.0)):
            owner.metadata.define(MetadataDefinition(
                key, Mechanism.PERIODIC, period=period, compute=lambda ctx: 0,
            ))
        sa = owner.metadata.subscribe(A)
        sb = owner.metadata.subscribe(B)
        assert system.scheduler.active_task_count() == 2
        sa.cancel()
        assert system.scheduler.active_task_count() == 1
        sb.cancel()
        assert system.scheduler.active_task_count() == 0

    def test_fire_count_and_lateness_recorded(self, make_owner, clock):
        owner = make_owner()
        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=lambda ctx: 0,
        ))
        subscription = owner.metadata.subscribe(A)
        task = subscription.handler._task
        clock.advance_by(35.0)
        assert task.fire_count == 3
        assert task.mean_lateness == 0.0  # virtual time is exact
        subscription.cancel()

    def test_unregister_twice_is_safe(self, clock):
        scheduler = VirtualTimeScheduler(clock)

        class FakeHandler:
            period = 5.0

            def periodic_refresh(self):
                pass

        task = scheduler.register(FakeHandler())
        scheduler.unregister(task)
        scheduler.unregister(task)
        assert scheduler.active_task_count() == 0


class TestThreadedScheduler:
    def test_single_worker_runs_updates(self):
        clock, scheduler, registry = make_system_with_threaded(pool_size=1)
        counter = {"n": 0}
        registry.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=0.02,
            compute=lambda ctx: counter.__setitem__("n", counter["n"] + 1),
        ))
        with scheduler:
            subscription = registry.subscribe(A)
            time.sleep(0.2)
            subscription.cancel()
        assert counter["n"] >= 3

    def test_pool_parallelism_with_slow_tasks(self):
        """Two slow tasks meet their cadence only with two workers."""

        def run(pool_size: int) -> int:
            clock, scheduler, registry = make_system_with_threaded(pool_size)
            fired = {"n": 0}

            def slow(ctx):
                time.sleep(0.03)
                fired["n"] += 1
                return fired["n"]

            for key in (A, B):
                registry.define(MetadataDefinition(
                    key, Mechanism.PERIODIC, period=0.03, compute=slow,
                ))
            with scheduler:
                subs = [registry.subscribe(A), registry.subscribe(B)]
                time.sleep(0.35)
                for subscription in subs:
                    subscription.cancel()
            return fired["n"]

        serial = run(pool_size=1)
        parallel = run(pool_size=2)
        assert parallel > serial

    def test_unregister_stops_firing(self):
        clock, scheduler, registry = make_system_with_threaded(pool_size=1)
        counter = {"n": 0}
        registry.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=0.01,
            compute=lambda ctx: counter.__setitem__("n", counter["n"] + 1),
        ))
        with scheduler:
            subscription = registry.subscribe(A)
            time.sleep(0.08)
            subscription.cancel()
            at_cancel = counter["n"]
            time.sleep(0.1)
            # Allow one in-flight refresh that raced the cancel.
            assert counter["n"] <= at_cancel + 1

    def test_failing_refresh_does_not_kill_worker(self):
        clock, scheduler, registry = make_system_with_threaded(pool_size=1)
        calls = {"bad": 0, "good": 0}

        def bad(ctx):
            calls["bad"] += 1
            raise RuntimeError("boom")

        registry.define(MetadataDefinition(A, Mechanism.PERIODIC, period=0.01,
                                           compute=bad))
        registry.define(MetadataDefinition(
            B, Mechanism.PERIODIC, period=0.01,
            compute=lambda ctx: calls.__setitem__("good", calls["good"] + 1),
        ))
        with scheduler:
            # Subscribe B first so its seed compute succeeds independently.
            sb = registry.subscribe(B)
            try:
                registry.subscribe(A)  # seed compute raises
            except Exception:
                pass
            time.sleep(0.1)
            sb.cancel()
        assert calls["good"] >= 3

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            ThreadedScheduler(SystemClock(), pool_size=0)

    def test_unregister_waits_for_inflight_refresh(self):
        """After unregister() returns, no refresh is running or can start —
        the old pop-to-fire window (task popped, cancelled-check not yet
        done) must be closed."""
        scheduler = ThreadedScheduler(SystemClock(), pool_size=2)
        started = threading.Event()
        state = {"completed": 0, "started": 0}

        class SlowHandler:
            period = 0.005

            def periodic_refresh(self):
                state["started"] += 1
                started.set()
                time.sleep(0.05)
                state["completed"] += 1

        with scheduler:
            task = scheduler.register(SlowHandler())
            assert started.wait(timeout=5.0)
            scheduler.unregister(task)
            # The in-flight refresh finished before unregister returned...
            assert state["completed"] == state["started"]
            at_cancel = state["started"]
            time.sleep(0.05)
            # ...and nothing started afterwards.
            assert state["started"] == at_cancel
        snapshot = scheduler.task_snapshot(task)
        assert snapshot["cancelled"] is True
        assert snapshot["running"] is False
        assert snapshot["fire_count"] == at_cancel

    def test_unregister_without_wait_returns_immediately(self):
        scheduler = ThreadedScheduler(SystemClock(), pool_size=1)
        blocked = threading.Event()

        class BlockingHandler:
            period = 0.001

            def periodic_refresh(self):
                blocked.set()
                time.sleep(0.2)

        with scheduler:
            task = scheduler.register(BlockingHandler())
            assert blocked.wait(timeout=5.0)
            start = time.monotonic()
            scheduler.unregister(task, wait=False)
            assert time.monotonic() - start < 0.1
            assert scheduler.active_task_count() == 0

    def test_self_unregister_from_refresh_does_not_deadlock(self):
        """A handler cancelling its own task from inside its refresh (e.g. a
        compute deciding it is done) must not wait on itself."""
        scheduler = ThreadedScheduler(SystemClock(), pool_size=1)
        done = threading.Event()

        class SelfCancelling:
            period = 0.001
            task = None

            def periodic_refresh(self):
                if self.task is None:
                    return  # fired before register() returned; next tick
                scheduler.unregister(self.task)
                done.set()

        with scheduler:
            handler = SelfCancelling()
            handler.task = scheduler.register(handler)
            assert done.wait(timeout=5.0)
            assert scheduler.active_task_count() == 0

    def test_task_snapshot_is_consistent(self):
        scheduler = ThreadedScheduler(SystemClock(), pool_size=1)
        fired = threading.Event()

        class Handler:
            period = 0.005

            def periodic_refresh(self):
                fired.set()

        with scheduler:
            task = scheduler.register(Handler())
            assert fired.wait(timeout=5.0)
            snapshot = scheduler.task_snapshot(task)
            assert snapshot["fire_count"] >= 1
            assert snapshot["error_count"] == 0
            assert snapshot["total_lateness"] >= 0.0
            scheduler.unregister(task)

    def test_stop_is_idempotent(self):
        clock, scheduler, registry = make_system_with_threaded(pool_size=1)
        scheduler.start()
        scheduler.stop()
        scheduler.stop()


class TestUnregisterTimeout:
    """The unregister backstop must be *loud*: a hung refresh breaks the
    "no refresh after unregister returns" contract, so expiry logs a
    warning and emits ``SchedulerCancel(timed_out=True)``."""

    def test_timeout_warns_and_emits_telemetry(self, caplog):
        clock, scheduler, registry = make_system_with_threaded(pool_size=1)
        telemetry = registry.system.enable_telemetry()
        scheduler.unregister_wait_timeout = 0.15
        hanging = threading.Event()
        release = threading.Event()
        calls = {"n": 0}

        def compute(ctx):
            calls["n"] += 1
            if calls["n"] == 1:
                return 0  # seed compute at subscribe time stays instant
            hanging.set()
            release.wait(timeout=10.0)
            return calls["n"]

        registry.define(MetadataDefinition(A, Mechanism.PERIODIC,
                                           period=0.01, compute=compute))
        try:
            with scheduler:
                subscription = registry.subscribe(A)
                assert hanging.wait(timeout=5.0)  # a refresh is now stuck
                started = time.monotonic()
                with caplog.at_level(
                        "WARNING", logger="repro.metadata.scheduling"):
                    subscription.cancel()
                waited = time.monotonic() - started
                # The backstop returned instead of hanging forever...
                assert 0.1 <= waited < 5.0
                release.set()
            # ...and it was loud about the broken contract.
            assert any("timed out" in record.message
                       for record in caplog.records)
            cancels = telemetry.bus.events(kind="sched.cancel")
            assert any(event.timed_out and event.in_flight
                       for event in cancels)
            counters = telemetry.metrics.snapshot()["counters"]
            assert counters.get("scheduler_cancel_timeouts_total") == 1
        finally:
            release.set()

    def test_clean_cancel_is_not_marked_timed_out(self):
        clock, scheduler, registry = make_system_with_threaded(pool_size=1)
        telemetry = registry.system.enable_telemetry()
        registry.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=0.02, compute=lambda ctx: 1,
        ))
        with scheduler:
            subscription = registry.subscribe(A)
            time.sleep(0.05)
            subscription.cancel()
        cancels = telemetry.bus.events(kind="sched.cancel")
        assert cancels and all(not event.timed_out for event in cancels)
        counters = telemetry.metrics.snapshot()["counters"]
        assert "scheduler_cancel_timeouts_total" not in counters
