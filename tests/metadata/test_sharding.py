"""Sharded metadata graph: placement, cross-shard propagation, accounting.

The sharded runtime (ISSUE 10, Section 3.2.3 at scale) partitions registries
across per-shard lock hierarchies and propagation engines.  These tests pin
its contracts:

* **placement** — deterministic hash placement, overridable per system;
* **cross-shard waves** — a boundary crossing is an *enqueue* into the
  destination engine (``remote_in == remote_out``), never a foreign lock
  acquisition, and the conservation law ``planned == refreshes +
  skipped_poisoned`` holds per shard and globally — poison crossings
  included;
* **edge table / introspection** — boundary edges are observable while
  subscribed and gone after cancel; ``describe_system`` grows a ``shards``
  section;
* **atomic cross-shard subscribe_many** — a failing include on shard B rolls
  back the batch's provisional handlers *and* inter-shard edge-table entries
  on shard A, leaving both shards exactly as before;
* **env factory** — ``system_from_env`` honours ``REPRO_SHARDS`` (the CI
  shard-matrix hook).
"""

from __future__ import annotations

import threading
import zlib

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import HandlerError
from repro.common.racecheck import RaceCheck
from repro.metadata.introspect import describe_system
from repro.metadata.item import (
    Mechanism,
    MetadataDefinition,
    MetadataKey,
    NodeDep,
    SelfDep,
)
from repro.metadata.locks import FineGrainedLockPolicy
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import VirtualTimeScheduler
from repro.metadata.sharding import (
    ShardedMetadataSystem,
    ShardedPropagationBackend,
    default_placement,
    system_from_env,
)

SRC = MetadataKey("src")
DERIVED = MetadataKey("derived")
ROLLUP = MetadataKey("rollup")
GOOD = MetadataKey("good")
BAD = MetadataKey("bad")
BOOM = MetadataKey("boom")


class _Node:
    def __init__(self, index: int) -> None:
        self.name = f"node{index}"
        self.index = index
        self.metadata: MetadataRegistry | None = None

    def __repr__(self) -> str:
        return f"_Node({self.name!r})"


def _round_robin(owner, shards: int) -> int:
    return owner.index % shards


def _build(shards: int = 2, **kwargs) -> ShardedMetadataSystem:
    clock = VirtualClock()
    return ShardedMetadataSystem(
        clock, VirtualTimeScheduler(clock),
        lock_policy=FineGrainedLockPolicy(),
        shards=shards, placement=_round_robin, **kwargs)


def _attach(system: MetadataSystem, index: int) -> _Node:
    node = _Node(index)
    node.metadata = MetadataRegistry(node, system)
    return node


def _assert_conservation(system: ShardedMetadataSystem) -> dict:
    backend = system.propagation
    assert isinstance(backend, ShardedPropagationBackend)
    for shard in backend.shard_stats():
        assert shard["planned"] == (shard["refreshes"]
                                    + shard["skipped_poisoned"])
    stats = backend.stats()
    assert stats["planned"] == stats["refreshes"] + stats["skipped_poisoned"]
    assert stats["remote_in"] == stats["remote_out"]
    assert stats["pending"] == 0
    return stats


class TestPlacement:
    def test_default_placement_is_a_stable_name_hash(self):
        # crc32 of the owner name — reproducible across processes, unlike
        # the salted builtin hash().
        assert default_placement("alpha", 4) == zlib.crc32(b"alpha") % 4
        node = _Node(7)
        assert default_placement(node, 4) == zlib.crc32(b"node7") % 4
        assert default_placement(node, 4) == default_placement(node, 4)

    def test_registry_lands_on_its_placement_shard(self):
        system = _build(shards=2)
        nodes = [_attach(system, i) for i in range(4)]
        for node in nodes:
            assert node.metadata.shard_index == node.index % 2
            assert system.shard_of(node) == node.index % 2

    def test_single_shard_system_places_everything_on_shard_zero(self):
        clock = VirtualClock()
        system = MetadataSystem(clock, VirtualTimeScheduler(clock))
        node = _attach(system, 3)
        assert node.metadata.shard_index == 0
        assert system.shard_count == 1


class TestCrossShardPropagation:
    def _ring(self, system, count: int):
        """``count`` nodes; node i's DERIVED depends on node i+1's SRC —
        under round-robin placement every dependency edge crosses shards."""
        nodes = [_attach(system, i) for i in range(count)]
        states = [{"v": 0} for _ in nodes]
        for node, state in zip(nodes, states):
            node.metadata.define(MetadataDefinition(
                SRC, Mechanism.ON_DEMAND,
                compute=lambda ctx, state=state: state["v"]))
        for i, node in enumerate(nodes):
            neighbour = nodes[(i + 1) % count]
            node.metadata.define(MetadataDefinition(
                DERIVED, Mechanism.TRIGGERED,
                compute=lambda ctx: ctx.value(SRC) + 1,
                dependencies=[NodeDep(neighbour, SRC)]))
        return nodes, states

    def test_boundary_wave_is_an_enqueue_not_a_foreign_lock(self):
        system = _build(shards=2)
        nodes, states = self._ring(system, 2)
        sub = nodes[0].metadata.subscribe(DERIVED)  # reads node1's SRC
        assert sub.get() == 1  # seed: 0 + 1

        states[1]["v"] = 5
        nodes[1].metadata.notify_changed(SRC)
        assert sub.get() == 6

        backend = system.propagation
        per_shard = backend.shard_stats()
        # The wave ran on node1's shard (shard 1) and *routed* the boundary
        # edge: one remote_out there, one remote_in + continuation wave on
        # node0's shard — no wave_count bump for the remote pass.
        assert per_shard[1]["waves"] == 1
        assert per_shard[1]["remote_out"] == 1
        assert per_shard[0]["remote_in"] == 1
        assert per_shard[0]["remote_waves"] == 1
        assert per_shard[0]["refreshes"] >= 1
        stats = _assert_conservation(system)
        assert stats["remote_in"] == 1
        sub.cancel()

    def test_poison_crosses_the_boundary_as_planned_and_skipped(self):
        system = _build(shards=2)
        node0, node1 = (_attach(system, i) for i in range(2))
        state = {"v": 1}
        fail = {"on": False}

        def src(ctx):
            if fail["on"]:
                raise RuntimeError("injected provider failure")
            return state["v"]

        node0.metadata.define(MetadataDefinition(
            SRC, Mechanism.ON_DEMAND, compute=src))
        node0.metadata.define(MetadataDefinition(
            DERIVED, Mechanism.TRIGGERED, dependencies=[SelfDep(SRC)],
            compute=lambda ctx: ctx.value(SRC)))
        # node1 (shard 1) depends on node0's DERIVED (shard 0): when DERIVED
        # fails in a wave, the poison must route across the boundary.
        node1.metadata.define(MetadataDefinition(
            ROLLUP, Mechanism.TRIGGERED,
            compute=lambda ctx: ctx.value(DERIVED) + 1,
            dependencies=[NodeDep(node0, DERIVED)]))
        sub = node1.metadata.subscribe(ROLLUP)
        assert sub.get() == 2

        fail["on"] = True
        node0.metadata.notify_changed(SRC)
        fail["on"] = False
        # The rollup was planned on shard 1 and skipped: stale value kept.
        assert sub.get() == 2
        per_shard = system.propagation.shard_stats()
        assert per_shard[0]["errors"] == 1
        assert per_shard[1]["skipped_poisoned"] == 1
        assert per_shard[1]["refreshes"] == 0
        _assert_conservation(system)

        state["v"] = 3
        node0.metadata.notify_changed(SRC)
        assert sub.get() == 4  # recovers on the next healthy wave
        _assert_conservation(system)
        sub.cancel()

    def test_traced_hops_emit_events_and_metrics_with_span_continuity(self):
        system = _build(shards=2)
        tel = system.enable_telemetry()
        nodes, states = self._ring(system, 2)
        sub = nodes[0].metadata.subscribe(DERIVED)
        states[1]["v"] = 9
        nodes[1].metadata.notify_changed(SRC)
        assert sub.get() == 10

        hops = tel.bus.events(kind="wave.cross_shard")
        assert len(hops) == 1
        hop = hops[0]
        assert (hop.from_shard, hop.to_shard) == (1, 0)
        assert hop.from_node == "node1" and hop.to_node == "node0"
        assert hop.from_key == "src" and hop.to_key == "derived"
        assert not hop.poisoned
        # The hop carries the originating wave's span: the continuation wave
        # on the destination shard stays causally traceable.
        origin_wave = [e for e in tel.bus.events(kind="wave.start")
                       if e.shard == 1][-1]
        assert hop.span == origin_wave.span != 0
        assert tel.metrics.counter(
            "cross_shard_hops_total",
            {"from_shard": "1", "to_shard": "0"}).value == 1
        sub.cancel()

    def test_poisoned_hop_increments_the_poison_counter(self):
        system = _build(shards=2)
        tel = system.enable_telemetry()
        node0, node1 = (_attach(system, i) for i in range(2))
        fail = {"on": False}

        def derived(ctx):
            if fail["on"]:
                raise RuntimeError("boom")
            return ctx.value(SRC)

        node0.metadata.define(MetadataDefinition(
            SRC, Mechanism.ON_DEMAND, compute=lambda ctx: 1))
        node0.metadata.define(MetadataDefinition(
            DERIVED, Mechanism.TRIGGERED, dependencies=[SelfDep(SRC)],
            compute=derived))
        node1.metadata.define(MetadataDefinition(
            ROLLUP, Mechanism.TRIGGERED,
            compute=lambda ctx: ctx.value(DERIVED),
            dependencies=[NodeDep(node0, DERIVED)]))
        sub = node1.metadata.subscribe(ROLLUP)
        fail["on"] = True
        node0.metadata.notify_changed(SRC)
        fail["on"] = False
        poisoned = [e for e in tel.bus.events(kind="wave.cross_shard")
                    if e.poisoned]
        assert len(poisoned) == 1
        assert tel.metrics.counter("cross_shard_poison_hops_total").value == 1
        _assert_conservation(system)
        sub.cancel()

    def test_edge_table_tracks_live_boundary_edges(self):
        system = _build(shards=2)
        nodes, _states = self._ring(system, 4)
        assert system.cross_shard_edges() == ()
        subs = [node.metadata.subscribe(DERIVED) for node in nodes]
        edges = system.cross_shard_edges()
        assert len(edges) == 4
        for dependency, dependent in edges:
            assert (dependency.registry.shard_index
                    != dependent.registry.shard_index)
        described = system.describe_shards()
        assert described["count"] == 2
        assert described["cross_shard_edges"] == 4
        assert sum(s["registries"] for s in described["shards"]) == 4
        for sub in subs:
            sub.cancel()
        assert system.cross_shard_edges() == ()

    def test_describe_system_grows_a_shards_section(self):
        system = _build(shards=2)
        self._ring(system, 2)
        snapshot = describe_system(system)
        assert snapshot["shards"]["count"] == 2
        assert len(snapshot["shards"]["shards"]) == 2
        clock = VirtualClock()
        plain = MetadataSystem(clock, VirtualTimeScheduler(clock))
        assert "shards" not in describe_system(plain)

    def test_events_fired_batches_stay_per_shard(self):
        system = _build(shards=2)
        nodes, states = self._ring(system, 2)
        subs = [node.metadata.subscribe(DERIVED) for node in nodes]
        registry = nodes[0].metadata
        # One batch containing both nodes' sources: the backend splits it by
        # shard, so each engine coalesces its own sub-batch into one wave.
        before = [s["waves"] for s in system.propagation.shard_stats()]
        for state in states:
            state["v"] += 1
        for node in nodes:
            node.metadata.notify_changed_many([SRC])
        after = [s["waves"] for s in system.propagation.shard_stats()]
        assert [a - b for a, b in zip(after, before)] == [1, 1]
        assert registry is nodes[0].metadata
        _assert_conservation(system)
        for sub in subs:
            sub.cancel()


class TestSubscribeManyCrossShardRollback:
    """The batch-subscribe atomicity satellite: a failing include on shard B
    must undo shard A's provisional handlers *and* the inter-shard edge-table
    entries, leaving both shards exactly as if the call never happened."""

    def _build_pair(self):
        system = _build(shards=2)
        node0, node1 = (_attach(system, i) for i in range(2))
        state = {"v": 0}
        node1.metadata.define(MetadataDefinition(
            SRC, Mechanism.ON_DEMAND,
            compute=lambda ctx: state["v"]))
        # GOOD (shard 0) -> node1's SRC (shard 1): includes cleanly and
        # records one boundary edge.
        node0.metadata.define(MetadataDefinition(
            GOOD, Mechanism.TRIGGERED,
            compute=lambda ctx: ctx.value(SRC) + 1,
            dependencies=[NodeDep(node1, SRC)]))
        # BAD (shard 0) -> node1's BOOM (shard 1): BOOM is static and its
        # inclusion-time compute raises *on shard 1*, after GOOD's closure
        # already landed on both shards.
        node1.metadata.define(MetadataDefinition(
            BOOM, Mechanism.STATIC,
            compute=lambda ctx: (_ for _ in ()).throw(
                RuntimeError("inclusion failure on shard B"))))
        node0.metadata.define(MetadataDefinition(
            BAD, Mechanism.TRIGGERED,
            compute=lambda ctx: ctx.value(BOOM),
            dependencies=[NodeDep(node1, BOOM)]))
        return system, node0, node1, state

    def test_failing_include_on_shard_b_rolls_back_shard_a(self):
        system, node0, node1, state = self._build_pair()
        with pytest.raises(HandlerError):
            node0.metadata.subscribe_many([GOOD, BAD])

        # Both shards' topology is exactly as before the call: no boundary
        # edges, no handlers, and the create/remove ledger balances.
        assert system.cross_shard_edges() == ()
        assert list(node0.metadata.included_keys()) == []
        assert list(node1.metadata.included_keys()) == []
        stats = system.stats()
        assert stats["handlers_created"] == stats["handlers_removed"]
        assert stats["handlers_included"] == 0
        for shard in system.describe_shards()["shards"]:
            assert shard["handlers"] == 0

    def test_behavior_after_rollback_matches_a_fresh_system(self):
        def run(poke_rollback: bool):
            system, node0, node1, state = self._build_pair()
            if poke_rollback:
                with pytest.raises(HandlerError):
                    node0.metadata.subscribe_many([GOOD, BAD])
            (sub,) = node0.metadata.subscribe_many([GOOD])
            state["v"] = 7
            node1.metadata.notify_changed(SRC)
            value = sub.get()
            edges = len(system.cross_shard_edges())
            backend_stats = _assert_conservation(system)
            sub.cancel()
            return value, edges, backend_stats["remote_in"]

        assert run(poke_rollback=True) == run(poke_rollback=False)


class TestSystemFromEnv:
    def _make(self, env):
        clock = VirtualClock()
        return system_from_env(clock, VirtualTimeScheduler(clock),
                               lock_policy=FineGrainedLockPolicy(), env=env)

    def test_unset_or_one_gives_the_plain_system(self):
        for env in ({}, {"REPRO_SHARDS": ""}, {"REPRO_SHARDS": "1"},
                    {"REPRO_SHARDS": " 1 "}):
            system = self._make(env)
            assert type(system) is MetadataSystem
            assert system.shard_count == 1

    def test_n_greater_than_one_gives_the_sharded_system(self):
        system = self._make({"REPRO_SHARDS": "4"})
        assert isinstance(system, ShardedMetadataSystem)
        assert system.shard_count == 4
        assert len(system.shard_locks) == 4

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            self._make({"REPRO_SHARDS": "many"})
        with pytest.raises(ValueError):
            self._make({"REPRO_SHARDS": "0"})

    def test_mismatched_backend_raises(self):
        from repro.metadata.propagation import PropagationEngine
        clock = VirtualClock()
        with pytest.raises(TypeError):
            system_from_env(clock, VirtualTimeScheduler(clock),
                            propagation=PropagationEngine(),
                            env={"REPRO_SHARDS": "4"})
        with pytest.raises(TypeError):
            ShardedMetadataSystem(clock, VirtualTimeScheduler(clock),
                                  propagation=PropagationEngine())  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            ShardedMetadataSystem(clock, VirtualTimeScheduler(clock),
                                  propagation=ShardedPropagationBackend(2),
                                  shards=4)


@pytest.mark.stress
class TestCrossShardStorm:
    """Threaded storm over a boundary-heavy ring: notify storms race
    subscription churn whose closures cross shards.  The conservation and
    boundary laws must hold exactly at quiescence."""

    def test_storm_preserves_accounting_laws(self):
        system = _build(shards=4)
        nodes = [_attach(system, i) for i in range(4)]
        states = [{"v": 0} for _ in nodes]
        locks = [threading.Lock() for _ in nodes]
        for node, state, lock in zip(nodes, states, locks):
            def src(ctx, state=state, lock=lock):
                with lock:
                    return state["v"]
            node.metadata.define(MetadataDefinition(
                SRC, Mechanism.ON_DEMAND, compute=src))
        for i, node in enumerate(nodes):
            neighbour = nodes[(i + 1) % len(nodes)]
            node.metadata.define(MetadataDefinition(
                DERIVED, Mechanism.TRIGGERED,
                compute=lambda ctx: ctx.value(SRC) + 1,
                dependencies=[NodeDep(neighbour, SRC)]))
        anchors = [nodes[i].metadata.subscribe(DERIVED) for i in (0, 1)]

        def notify(worker, i):
            node = nodes[(worker + i) % len(nodes)]
            state, lock = states[node.index], locks[node.index]
            with lock:
                state["v"] += 1
            node.metadata.notify_changed(SRC)

        def churn(worker, i):
            sub = nodes[2 + worker % 2].metadata.subscribe(DERIVED)
            try:
                sub.get()
            finally:
                sub.cancel()

        check = RaceCheck(iterations=150, timeout=60.0,
                          name="cross-shard-storm")
        check.add(notify, threads=2)
        check.add(churn, threads=2)
        check.run()

        for anchor in anchors:
            anchor.cancel()
        stats = _assert_conservation(system)
        assert stats["remote_in"] > 0  # the storm really crossed boundaries
        assert system.included_handler_count == 0
        assert system.cross_shard_edges() == ()
