"""Tests for batch subscription (``MetadataRegistry.subscribe_many``).

The batch path must be semantically identical to a subscribe loop — same
handlers, same include counts, same subscription order — while resolving
the whole closure under one structure-lock acquisition, and it must be
atomic: one bad key rolls the entire batch back.
"""

from __future__ import annotations

import pytest

from repro.common.errors import UnknownMetadataError
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep

A, B, C, D = (MetadataKey(k) for k in "abcd")
Q1, Q2, Q3 = (MetadataKey(f"q{i}") for i in (1, 2, 3))


def define_chain(registry):
    """Base A <- B, plus query items Q1/Q2/Q3 all depending on B."""
    registry.define(MetadataDefinition(A, Mechanism.STATIC, value=1))
    registry.define(MetadataDefinition(
        B, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(A) + 1,
        dependencies=[SelfDep(A)],
    ))
    for key in (Q1, Q2, Q3):
        registry.define(MetadataDefinition(
            key, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(B) * 2,
            dependencies=[SelfDep(B)],
        ))


def fingerprint(registry):
    return {
        key: registry.handler(key).include_count
        for key in registry.included_keys()
    }


class TestSubscribeMany:
    def test_matches_subscribe_loop_structure(self, make_owner):
        loop_owner, batch_owner = make_owner("loop"), make_owner("batch")
        define_chain(loop_owner.metadata)
        define_chain(batch_owner.metadata)
        loop_subs = [loop_owner.metadata.subscribe(k) for k in (Q1, Q2, Q3)]
        batch_subs = batch_owner.metadata.subscribe_many([Q1, Q2, Q3])
        assert fingerprint(loop_owner.metadata) == fingerprint(batch_owner.metadata)
        assert [s.key for s in batch_subs] == [s.key for s in loop_subs]
        assert [s.get() for s in batch_subs] == [s.get() for s in loop_subs]

    def test_shared_closure_resolved_once_per_reference(self, make_owner):
        owner = make_owner()
        define_chain(owner.metadata)
        owner.metadata.subscribe_many([Q1, Q2, Q3])
        handler_b = owner.metadata.handler(B)
        # B is included once per dependent query, sharing one handler.
        assert handler_b.include_count == 3
        assert owner.metadata.handler(A).include_count == 1

    def test_returns_subscriptions_in_input_order_with_duplicates(self, make_owner):
        owner = make_owner()
        define_chain(owner.metadata)
        subscriptions = owner.metadata.subscribe_many([Q2, Q1, Q2])
        assert [s.key for s in subscriptions] == [Q2, Q1, Q2]
        # Duplicates share the handler but are independent subscriptions.
        assert subscriptions[0].handler is subscriptions[2].handler
        subscriptions[0].cancel()
        assert subscriptions[2].get() == 4  # still alive

    def test_atomic_rollback_on_unknown_key(self, make_owner):
        owner = make_owner()
        define_chain(owner.metadata)
        with pytest.raises(UnknownMetadataError):
            owner.metadata.subscribe_many([Q1, MetadataKey("nope"), Q2])
        # Nothing stays included: the whole batch rolled back.
        assert owner.metadata.included_keys() == []

    def test_rollback_keeps_prior_subscribers_alive(self, make_owner):
        owner = make_owner()
        define_chain(owner.metadata)
        existing = owner.metadata.subscribe(Q1)
        with pytest.raises(UnknownMetadataError):
            owner.metadata.subscribe_many([Q2, MetadataKey("nope")])
        # The failed batch must not tear down the pre-existing subscription.
        assert existing.get() == 4
        assert owner.metadata.handler(B).include_count == 1

    def test_cancel_releases_batch_subscriptions(self, make_owner):
        owner = make_owner()
        define_chain(owner.metadata)
        subscriptions = owner.metadata.subscribe_many([Q1, Q2, Q3])
        for subscription in subscriptions:
            subscription.cancel()
        assert owner.metadata.included_keys() == []

    def test_single_span_with_one_event_per_key(self, make_owner, system):
        owner = make_owner()
        define_chain(owner.metadata)
        telemetry = system.enable_telemetry()
        owner.metadata.subscribe_many([Q1, Q2])
        events = telemetry.bus.events(kind="subscribe")
        assert len(events) == 2
        # One batch = one causal span covering both subscribes.
        assert len({event.span for event in events}) == 1

    def test_subscribe_all_uses_batch_path(self, make_owner, system):
        owner = make_owner()
        define_chain(owner.metadata)
        subscriptions = system.subscribe_all()
        assert [s.key for s in subscriptions] == owner.metadata.available_keys()
        values = {s.key: s.get() for s in subscriptions}
        assert values[B] == 2
        assert values[Q3] == 4
