"""Tests for cached wave plans, topology epochs and wave coalescing.

The plan cache must be *invisible* except in cost: any sequence of wiring
changes and waves must produce byte-identical refresh/suppression
accounting on the cached and the uncached engine, and a wiring change in
the middle of a wave stream must invalidate every cached plan (topology
epoch bump) so the next wave sees the new structure.
"""

from __future__ import annotations

import random

from repro.common.clock import VirtualClock
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep
from repro.metadata.propagation import PropagationEngine
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import VirtualTimeScheduler

A, B, C, D, E = (MetadataKey(k) for k in "abcde")

WORK_KEYS = ("waves", "refreshes", "suppressed", "errors")


class _Owner:
    name = "cache-owner"


def make_registry(engine: PropagationEngine):
    clock = VirtualClock()
    system = MetadataSystem(clock, VirtualTimeScheduler(clock),
                            propagation=engine)
    owner = _Owner()
    return MetadataRegistry(owner, system)


def define_source(registry, key, state):
    registry.define(MetadataDefinition(
        key, Mechanism.ON_DEMAND, compute=lambda ctx: state[key.name],
    ))


def define_triggered(registry, key, deps, compute=None):
    if compute is None:
        def compute(ctx, _deps=tuple(deps)):
            return sum(ctx.value(d) for d in _deps)
    registry.define(MetadataDefinition(
        key, Mechanism.TRIGGERED, compute=compute,
        dependencies=[SelfDep(d) for d in deps],
    ))


class TestPlanCache:
    def test_repeated_waves_hit_the_cache(self):
        engine = PropagationEngine()
        registry = make_registry(engine)
        state = {"a": 1}
        define_source(registry, A, state)
        define_triggered(registry, B, [A])
        define_triggered(registry, C, [B])
        subscription = registry.subscribe(C)
        for i in range(5):
            state["a"] = 10 + i
            registry.notify_changed(A)
        stats = engine.stats()
        assert stats["plan_misses"] == 1
        assert stats["plan_hits"] == 4
        assert stats["cached_plans"] == 1
        assert subscription.get() == 14

    def test_include_mid_stream_bumps_epoch_and_rebuilds(self):
        """A new dependent subscribed between waves must join the next wave."""
        engine = PropagationEngine()
        registry = make_registry(engine)
        state = {"a": 1}
        define_source(registry, A, state)
        define_triggered(registry, B, [A])
        registry.subscribe(B)
        state["a"] = 2
        registry.notify_changed(A)
        epoch_before = engine.topology_epoch
        # Wiring change: C is included mid-stream.
        define_triggered(registry, C, [A])
        registry.subscribe(C)
        assert engine.topology_epoch > epoch_before
        state["a"] = 3
        registry.notify_changed(A)
        assert registry.get(C) == 3  # refreshed by the rebuilt plan
        stats = engine.stats()
        assert stats["plan_misses"] >= 2  # initial plan + post-include rebuild

    def test_exclude_mid_stream_stops_refreshing_handler(self):
        engine = PropagationEngine()
        registry = make_registry(engine)
        state = {"a": 1}
        define_source(registry, A, state)
        seen = []

        def spy(ctx):
            value = ctx.value(A)
            seen.append(value)
            return value

        define_triggered(registry, B, [A], compute=spy)
        subscription = registry.subscribe(B)
        state["a"] = 2
        registry.notify_changed(A)
        assert 2 in seen
        epoch_before = engine.topology_epoch
        subscription.cancel()  # exclusion: B's handler is removed
        assert engine.topology_epoch > epoch_before
        assert engine.stats()["cached_plans"] == 0  # eagerly invalidated
        seen.clear()
        state["a"] = 3
        registry.notify_changed(A)
        assert seen == []  # removed handler never refreshes again

    def test_undefine_bumps_epoch(self):
        engine = PropagationEngine()
        registry = make_registry(engine)
        state = {"a": 1}
        define_source(registry, A, state)
        epoch_before = engine.topology_epoch
        registry.undefine(A)
        assert engine.topology_epoch > epoch_before

    def test_stale_plan_is_not_cached_across_epoch_bump(self):
        """A plan built concurrently with a wiring change must not land in
        the cache (it may describe the old structure)."""
        engine = PropagationEngine()
        registry = make_registry(engine)
        state = {"a": 1}
        define_source(registry, A, state)
        define_triggered(registry, B, [A])
        registry.subscribe(B)
        source = registry.handler(A)
        original_build = engine._build_plan

        def racing_build(seeds):
            entries = original_build(seeds)
            engine.bump_topology()  # wiring changed while we were building
            return entries

        engine._build_plan = racing_build
        try:
            state["a"] = 2
            registry.notify_changed(A)
        finally:
            engine._build_plan = original_build
        assert engine.stats()["cached_plans"] == 0
        # The wave itself still ran to completion on the stale-but-valid plan.
        assert registry.get(B) == 2
        assert source.removed is False


class TestCachedUncachedEquivalence:
    def _random_workload(self, engine: PropagationEngine, seed: int):
        """Random DAG + interleaved waves/wiring changes, fully seeded."""
        rng = random.Random(seed)
        registry = make_registry(engine)
        state = {"s0": 0, "s1": 0}
        sources = [MetadataKey("s0"), MetadataKey("s1")]
        for key in sources:
            define_source(registry, key, state)
        layers: list[list[MetadataKey]] = [sources]
        counter = 0
        for depth in range(3):
            layer = []
            for _ in range(rng.randint(2, 4)):
                counter += 1
                key = MetadataKey(f"n{depth}.{counter}")
                pool = [k for level in layers for k in level]
                deps = rng.sample(pool, k=min(len(pool), rng.randint(1, 3)))
                if rng.random() < 0.3:
                    # Clamped node: saturates and cuts propagation short.
                    def clamp(ctx, _deps=tuple(deps)):
                        return min(2, sum(ctx.value(d) for d in _deps))
                    define_triggered(registry, key, deps, compute=clamp)
                else:
                    define_triggered(registry, key, deps)
                layer.append(key)
            layers.append(layer)
        leaves = [k for level in layers[1:] for k in level]
        subscriptions = {k: registry.subscribe(k) for k in leaves}
        # Interleave waves with wiring changes, same script on both engines.
        for step in range(60):
            action = rng.random()
            if action < 0.75:
                source = rng.choice(["s0", "s1"])
                state[source] += rng.randint(1, 3)
                registry.notify_changed(MetadataKey(source))
            elif action < 0.9 and subscriptions:
                key = rng.choice(sorted(subscriptions))
                subscriptions.pop(key).cancel()
            else:
                counter += 1
                key = MetadataKey(f"x{counter}")
                pool = [k for level in layers for k in level
                        if registry.is_included(k) or k in sources]
                deps = rng.sample(pool, k=min(len(pool), 2))
                define_triggered(registry, key, deps)
                subscriptions[key] = registry.subscribe(key)
        values = {str(k): registry.get(k) for k in sorted(subscriptions)}
        return engine.stats(), values

    def test_identical_accounting_on_random_sequences(self):
        for seed in (7, 23, 99):
            cached_stats, cached_values = self._random_workload(
                PropagationEngine(), seed)
            uncached_stats, uncached_values = self._random_workload(
                PropagationEngine(plan_cache=False, coalesce=False), seed)
            for key in WORK_KEYS:
                assert cached_stats[key] == uncached_stats[key], (
                    f"seed {seed}: {key} diverged: "
                    f"{cached_stats} vs {uncached_stats}")
            assert cached_values == uncached_values
            assert cached_stats["plan_hits"] > 0  # the cache actually engaged


class TestCoalescing:
    def _shared_chain(self, engine: PropagationEngine):
        registry = make_registry(engine)
        state = {"s0": 0, "s1": 0, "s2": 0}
        sources = [MetadataKey(k) for k in ("s0", "s1", "s2")]
        for key in sources:
            define_source(registry, key, state)
        stages = []
        for key in sources:
            stage = MetadataKey(f"stage.{key}")
            define_triggered(registry, stage, [key])
            stages.append(stage)
        merge_calls = []

        def merge(ctx):
            value = sum(ctx.value(s) for s in stages)
            merge_calls.append(value)
            return value

        define_triggered(registry, D, stages, compute=merge)
        define_triggered(registry, E, [D])
        registry.subscribe(E)
        return registry, state, sources, merge_calls

    def test_batch_recomputes_shared_dependent_once(self):
        engine = PropagationEngine()
        registry, state, sources, merge_calls = self._shared_chain(engine)
        merge_calls.clear()
        state.update(s0=1, s1=2, s2=3)
        registry.notify_changed_many(sources)
        assert merge_calls == [6]  # once per batch, not once per source
        stats = engine.stats()
        assert stats["waves"] == 3          # lost-wave accounting: per source
        assert stats["drains"] == 1         # one physical pass
        assert stats["merged_waves"] == 1
        assert stats["coalesced_sources"] == 3
        assert registry.get(E) == 6

    def test_per_source_engine_recomputes_per_wave(self):
        engine = PropagationEngine(coalesce=False)
        registry, state, sources, merge_calls = self._shared_chain(engine)
        merge_calls.clear()
        state.update(s0=1, s1=2, s2=3)
        registry.notify_changed_many(sources)
        assert len(merge_calls) == 3  # one recompute per source wave
        stats = engine.stats()
        assert stats["waves"] == 3
        assert stats["merged_waves"] == 0
        assert registry.get(E) == 6  # same final value either way

    def test_duplicate_sources_collapse(self):
        engine = PropagationEngine()
        registry, state, sources, merge_calls = self._shared_chain(engine)
        merge_calls.clear()
        state.update(s0=5)
        registry.notify_changed_many([sources[0], sources[0], sources[0]])
        assert merge_calls == [5]
        stats = engine.stats()
        assert stats["waves"] == 3  # every notification is accounted
        assert stats["drains"] == 1

    def test_coalesced_wave_emits_linkage_events(self):
        engine = PropagationEngine()
        registry, state, sources, merge_calls = self._shared_chain(engine)
        telemetry = registry.system.enable_telemetry()
        state.update(s0=1, s1=2, s2=3)
        registry.notify_changed_many(sources)
        coalesced = telemetry.bus.events(kind="wave.coalesced")
        assert len(coalesced) == 2  # sources folded into the first one's wave
        starts = [e for e in telemetry.bus.events(kind="wave.start")
                  if e.sources > 1]
        assert len(starts) == 1
        assert starts[0].sources == 3
        # Linkage: every coalesced event ties its enqueue span to the wave's.
        wave_span = starts[0].span
        for event in coalesced:
            assert event.span == wave_span
            assert event.source_span != wave_span
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters.get("waves_coalesced_total") == 2

    def test_nested_notifications_still_coalesce_safely(self):
        """A notify fired from inside a compute lands in the running drain
        and is processed afterwards — coalescing must not drop or double it."""
        engine = PropagationEngine()
        registry = make_registry(engine)
        state = {"a": 0, "b": 0}
        define_source(registry, A, state)
        define_source(registry, B, state)

        def chained(ctx):
            value = ctx.value(A)
            if value == 1 and state["b"] == 0:
                state["b"] = 7
                registry.notify_changed(B)
            return value

        define_triggered(registry, C, [A], compute=chained)
        define_triggered(registry, D, [B])
        registry.subscribe(C)
        registry.subscribe(D)
        state["a"] = 1
        registry.notify_changed(A)
        assert registry.get(C) == 1
        assert registry.get(D) == 7
        stats = engine.stats()
        assert stats["waves"] == 2
        assert stats["pending"] == 0
