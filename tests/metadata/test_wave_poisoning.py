"""Wave-level fault containment and its exact accounting invariant.

Every member a wave intends to recompute is *planned*; it then either
recomputes (``refreshes``) or is skipped because its subtree is poisoned
(``skipped_poisoned``).  The conservation law

    planned == refreshes + skipped_poisoned

is exact — pinned here over hand-built diamonds, seeded random DAGs across
all four execution paths (cached/uncached x traced/untraced), and a
threaded chaos run mixing injected faults with subscription churn.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.common.clock import SystemClock, VirtualClock
from repro.common.errors import HandlerError
from repro.common.faultcheck import FaultPlan
from repro.common.racecheck import RaceCheck
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep
from repro.metadata.locks import FineGrainedLockPolicy
from repro.metadata.propagation import PropagationEngine
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import ThreadedScheduler, VirtualTimeScheduler
from repro.metadata.sharding import system_from_env
from repro.reliability import FailurePolicy
from repro.telemetry.hub import explain_refresh

A = MetadataKey("a")
B = MetadataKey("b")
C = MetadataKey("c")
D = MetadataKey("d")


def assert_invariant(engine: PropagationEngine) -> dict:
    stats = engine.stats()
    assert stats["planned"] == stats["refreshes"] + stats["skipped_poisoned"]
    return stats


class TestDiamondContainment:
    """A -> (B, C) -> D with B failing: C refreshes, D is skipped."""

    def build(self, make_owner, plan):
        owner = make_owner("node")
        state = {"a": 0}

        def src(ctx):
            state["a"] += 1
            return state["a"]

        owner.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=src))
        owner.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED, dependencies=[SelfDep(A)],
            compute=plan.wrap("b", lambda ctx: ctx.value(A) * 10)))
        owner.metadata.define(MetadataDefinition(
            C, Mechanism.TRIGGERED, dependencies=[SelfDep(A)],
            compute=plan.wrap("c", lambda ctx: ctx.value(A) * 100)))
        owner.metadata.define(MetadataDefinition(
            D, Mechanism.TRIGGERED, dependencies=[SelfDep(B), SelfDep(C)],
            compute=plan.wrap("d", lambda ctx: ctx.value(B) + ctx.value(C))))
        return owner, [owner.metadata.subscribe(k) for k in (B, C, D)]

    def test_failed_member_poisons_exactly_its_subtree(self, make_owner,
                                                       clock, system):
        plan = FaultPlan().fail_on("b", [2])  # call 1 = seed, call 2 = wave
        owner, subs = self.build(make_owner, plan)
        sb, sc, sd = subs
        clock.advance_by(10.0)  # A: 1 -> 2; B's recompute fails in the wave
        assert sb.get() == 10       # last-good value (from the seed)
        assert sc.get() == 200      # sibling refreshed normally
        assert sd.get() == 110      # skipped: inputs were half-updated
        stats = assert_invariant(system.propagation)
        assert stats["skipped_poisoned"] == 1  # exactly D
        assert stats["errors"] == 1
        # Poisoning is engine-level: no FailurePolicy was attached anywhere.
        assert sb.handler.breaker is None
        clock.advance_by(10.0)  # A: 2 -> 3; everything recovers
        assert sd.get() == 330
        assert_invariant(system.propagation)
        for sub in subs:
            sub.cancel()

    def test_traced_wave_emits_poisoning_causality(self, make_owner, clock,
                                                   system):
        tel = system.enable_telemetry()
        plan = FaultPlan().fail_on("b", [2])
        owner, subs = self.build(make_owner, plan)
        clock.advance_by(10.0)
        events = tel.bus.events(kind="wave.poisoned")
        assert [(e.key, e.reason) for e in events] == \
            [("b", "compute-failed"), ("d", "poisoned-input")]
        end = tel.bus.events(kind="wave.end")[-1]
        assert end.poisoned == 2
        assert tel.metrics.counter("wave_poisoned_total",
                                   {"reason": "compute-failed"}).value == 1
        assert_invariant(system.propagation)
        for sub in subs:
            sub.cancel()

    def test_explain_refresh_names_the_poison(self, make_owner, clock,
                                              system):
        tel = system.enable_telemetry()
        plan = FaultPlan().fail_on("b", [2])
        owner, subs = self.build(make_owner, plan)
        clock.advance_by(10.0)
        explanation = explain_refresh(tel, "node", D)
        assert "stale" in explanation and "poisoned-input" in explanation
        for sub in subs:
            sub.cancel()

    def test_quarantined_member_is_skipped_not_recomputed(self, make_owner,
                                                          clock, system):
        tel = system.enable_telemetry()
        plan = FaultPlan().fail_on("b", range(2, 100))
        owner, subs = self.build(make_owner, plan)
        sb, sc, sd = subs
        policy_plan_calls = plan.calls("b")
        # No policy on B: the first failing wave poisons via compute-failed.
        # Attach quarantine behaviour by rebuilding with a policy instead.
        for sub in subs:
            sub.cancel()
        owner2 = make_owner("node2")
        state = {"a": 0}

        def src(ctx):
            state["a"] += 1
            return state["a"]

        policy = FailurePolicy(max_retries=0, jitter=0.0, probe_interval=100.0)
        owner2.metadata.define(MetadataDefinition(
            A, Mechanism.PERIODIC, period=10.0, compute=src))
        owner2.metadata.define(MetadataDefinition(
            B, Mechanism.TRIGGERED, dependencies=[SelfDep(A)],
            compute=plan.wrap("b2", lambda ctx: ctx.value(A) * 10),
            failure_policy=policy))
        owner2.metadata.define(MetadataDefinition(
            D, Mechanism.TRIGGERED, dependencies=[SelfDep(B)],
            compute=lambda ctx: ctx.value(B) + 1))
        plan.fail_on("b2", range(2, 100))
        sb = owner2.metadata.subscribe(B)
        sd = owner2.metadata.subscribe(D)
        clock.advance_by(10.0)  # wave 1: B fails -> quarantined, D poisoned
        calls_after_first = plan.calls("b2")
        clock.advance_by(10.0)  # wave 2: B rests — no compute attempt at all
        assert plan.calls("b2") == calls_after_first
        reasons = [e.reason for e in tel.bus.events(kind="wave.poisoned")]
        assert "quarantined" in reasons
        assert sb.stale is True
        assert sd.get() == 11  # built from B's stale last-good value
        assert_invariant(system.propagation)
        sb.cancel()
        sd.cancel()


def build_random_dag(system, rng: random.Random, plan: FaultPlan,
                     nodes: int = 30):
    """Seeded random DAG: one periodic source, ``nodes`` triggered items."""

    class Owner:
        name = "dag"
        upstream_nodes: list = []
        downstream_nodes: list = []

    owner = Owner()
    registry = MetadataRegistry(owner, system)
    state = {"tick": 0}

    def src(ctx):
        state["tick"] += 1
        return state["tick"]

    source = MetadataKey("src")
    registry.define(MetadataDefinition(
        source, Mechanism.PERIODIC, period=10.0, compute=src))
    keys = [source]
    for i in range(nodes):
        key = MetadataKey(f"n{i}")
        deps = rng.sample(keys, k=min(len(keys), rng.randint(1, 3)))

        def compute(ctx, deps=tuple(deps), fault_key=f"n{i}"):
            plan.check(fault_key)
            return sum(ctx.value(d) for d in deps) + 1

        policy = None
        if rng.random() < 0.5:
            policy = FailurePolicy(max_retries=0, jitter=0.0,
                                   probe_interval=35.0)
        registry.define(MetadataDefinition(
            key, Mechanism.TRIGGERED, compute=compute,
            dependencies=[SelfDep(d) for d in deps], failure_policy=policy))
        keys.append(key)
    subs = [registry.subscribe(k) for k in keys[1:]]
    return registry.subscribe(source), subs


class TestRandomDagProperty:
    """Seeded property test: the invariant holds on every execution path."""

    VARIANTS = {
        "cached-untraced": (True, False),
        "cached-traced": (True, True),
        "uncached-untraced": (False, False),
        "uncached-traced": (False, True),
    }

    def run_variant(self, seed: int, plan_cache: bool, traced: bool) -> dict:
        clock = VirtualClock()
        system = MetadataSystem(
            clock, VirtualTimeScheduler(clock),
            propagation=PropagationEngine(plan_cache=plan_cache))
        if traced:
            system.enable_telemetry(capacity=65536)
        plan = FaultPlan(seed=seed, active=False)
        rng = random.Random(seed)
        for i in range(30):
            plan.fail_rate(f"n{i}", 0.2)
        anchor, subs = build_random_dag(system, rng, plan)
        plan.activate()
        clock.advance_by(120.0)
        stats = assert_invariant(system.propagation)
        for sub in subs:
            sub.cancel()
        anchor.cancel()
        return {k: stats[k] for k in
                ("waves", "planned", "refreshes", "skipped_poisoned",
                 "suppressed", "errors")}

    @pytest.mark.parametrize("seed", [0, 1, 7, 2024])
    def test_invariant_and_path_equivalence(self, seed):
        results = {name: self.run_variant(seed, *flags)
                   for name, flags in self.VARIANTS.items()}
        baseline = results["cached-untraced"]
        assert baseline["planned"] > 0
        for name, stats in results.items():
            assert stats == baseline, (
                f"{name} diverged from cached-untraced for seed {seed}")


@pytest.mark.stress
@pytest.mark.chaos
class TestPoisoningUnderChurnStress:
    """RaceCheck: injected compute faults + concurrent include/exclude.

    The invariant must hold under a threaded scheduler with subscription
    churn racing the waves — the accounting is engine-global, so lost or
    double-counted members would break the equality immediately.
    """

    def test_invariant_survives_chaos(self):
        clock = SystemClock()
        scheduler = ThreadedScheduler(clock, pool_size=2)
        system = system_from_env(clock, scheduler,
                                 lock_policy=FineGrainedLockPolicy())

        class Owner:
            name = "chaos"
            upstream_nodes: list = []
            downstream_nodes: list = []

        registry = MetadataRegistry(Owner(), system)
        plan = FaultPlan(seed=99)
        state = {"n": 0}
        state_lock = threading.Lock()

        def bump(ctx):
            with state_lock:
                state["n"] += 1
                return state["n"]

        SRC, MID, TOP, CHURN = (MetadataKey("src"), MetadataKey("mid"),
                                MetadataKey("top"), MetadataKey("churn"))
        policy = FailurePolicy(max_retries=1, jitter=0.0, probe_interval=0.01)
        registry.define(MetadataDefinition(
            SRC, Mechanism.ON_DEMAND, compute=bump))
        registry.define(MetadataDefinition(
            MID, Mechanism.TRIGGERED, dependencies=[SelfDep(SRC)],
            compute=plan.wrap("mid", lambda ctx: ctx.value(SRC)),
            failure_policy=policy))
        registry.define(MetadataDefinition(
            TOP, Mechanism.TRIGGERED, dependencies=[SelfDep(MID)],
            compute=lambda ctx: ctx.value(MID) + 1))
        registry.define(MetadataDefinition(
            CHURN, Mechanism.TRIGGERED, dependencies=[SelfDep(SRC)],
            compute=plan.wrap("churn", lambda ctx: ctx.value(SRC)),
            failure_policy=policy))
        plan.fail_rate("mid", 0.2)
        plan.fail_rate("churn", 0.2)

        def notify(worker, i):
            registry.notify_changed(SRC)

        def churn(worker, i):
            try:
                sub = registry.subscribe(CHURN)
            except HandlerError:
                return  # the inclusion seed hit an injected fault
            try:
                sub.get()
            finally:
                sub.cancel()

        def read(worker, i):
            anchor_top.get()

        with scheduler:
            anchor_top = registry.subscribe(TOP)
            check = RaceCheck(iterations=150, timeout=60.0,
                              name="poisoning-churn")
            check.add(notify, threads=2)
            check.add(churn, threads=2)
            check.add(read, threads=2)
            check.run()
            anchor_top.cancel()

        stats = assert_invariant(system.propagation)
        assert stats["pending"] == 0
        assert system.stats()["handlers_included"] == 0
        assert plan.failures("mid") + plan.failures("churn") > 0
