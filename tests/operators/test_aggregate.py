"""Tests for the sliding aggregate operator."""

from __future__ import annotations

import pytest

from repro.common.errors import GraphError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.operators.aggregate import SlidingAggregate
from repro.operators.window import TimeWindow


def aggregate_pipeline(fn="avg", window=100.0):
    graph = QueryGraph()
    source = graph.add(Source("s", Schema(("x",))))
    win = graph.add(TimeWindow("w", window))
    agg = graph.add(SlidingAggregate("agg", field="x", fn=fn))
    results = []
    sink = graph.add(Sink("out", callback=lambda e: results.append(e.payload)))
    graph.connect(source, win)
    graph.connect(win, agg)
    graph.connect(agg, sink)
    graph.freeze()
    return graph, source, win, agg, sink, results


def feed(graph, source, values_times):
    nodes = graph.operators() + graph.sinks()
    for value, t in values_times:
        source.produce({"x": value}, t)
        while any(n.step() for n in nodes):
            pass


class TestAggregates:
    def test_running_average(self):
        graph, source, win, agg, sink, results = aggregate_pipeline("avg")
        feed(graph, source, [(10, 0.0), (20, 1.0), (30, 2.0)])
        assert [r["avg_x"] for r in results] == [10.0, 15.0, 20.0]

    def test_count(self):
        graph, source, win, agg, sink, results = aggregate_pipeline("count")
        feed(graph, source, [(1, 0.0), (1, 1.0)])
        assert [r["count_x"] for r in results] == [1.0, 2.0]

    def test_sum_min_max(self):
        for fn, expected in (("sum", 6.0), ("min", 1.0), ("max", 3.0)):
            graph, source, win, agg, sink, results = aggregate_pipeline(fn)
            feed(graph, source, [(1, 0.0), (2, 1.0), (3, 2.0)])
            assert results[-1][f"{fn}_x"] == expected

    def test_window_expiry_drops_old_values(self):
        graph, source, win, agg, sink, results = aggregate_pipeline("avg", window=10.0)
        feed(graph, source, [(100, 0.0), (2, 50.0)])
        # The first element expired at t=10, so the second average is 2.
        assert results[-1]["avg_x"] == 2.0
        assert agg.state_size() == 1

    def test_custom_callable(self):
        def spread(values):
            return max(values) - min(values)

        graph, source, win, agg, sink, results = aggregate_pipeline(spread)
        feed(graph, source, [(10, 0.0), (4, 1.0)])
        assert results[-1]["spread_x"] == 6.0

    def test_unknown_builtin_rejected(self):
        with pytest.raises(GraphError):
            SlidingAggregate("agg", field="x", fn="median-of-medians")

    def test_output_schema(self):
        graph, source, win, agg, sink, results = aggregate_pipeline("avg")
        assert agg.output_schema.fields == ("x", "avg_x")
