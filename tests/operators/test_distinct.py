"""Tests for DistinctFilter — the metadata-inheritance showcase (Sec. 4.4.2)."""

from __future__ import annotations

import pytest

from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.distinct import _INDEX_ENTRY_BYTES, INDEX_ENTRIES, DistinctFilter
from repro.operators.window import TimeWindow


def build(horizon=None, with_window=False):
    graph = QueryGraph(default_metadata_period=25.0)
    source = graph.add(Source("s", Schema(("k",))))
    distinct = graph.add(DistinctFilter("dedup", lambda e: e.field("k"),
                                        horizon=horizon))
    results = []
    sink = graph.add(Sink("out", callback=lambda e: results.append(e.field("k"))))
    if with_window:
        window = graph.add(TimeWindow("w", 50.0))
        graph.connect(source, window)
        graph.connect(window, distinct)
    else:
        graph.connect(source, distinct)
    graph.connect(distinct, sink)
    graph.freeze()
    return graph, source, distinct, sink, results


def feed(graph, source, events):
    nodes = graph.operators() + graph.sinks()
    for key, t in events:
        source.produce({"k": key}, t)
        while any(node.step() for node in nodes):
            pass


class TestDedupSemantics:
    def test_duplicates_suppressed(self):
        graph, source, distinct, sink, results = build()
        feed(graph, source, [(1, 0.0), (1, 1.0), (2, 2.0), (1, 3.0)])
        assert results == [1, 2]
        assert distinct.passed == 2
        assert distinct.rejected == 2

    def test_horizon_expires_suppression(self):
        graph, source, distinct, sink, results = build(horizon=10.0)
        feed(graph, source, [(1, 0.0), (1, 5.0), (1, 20.0)])
        assert results == [1, 1]  # second occurrence after the horizon passes

    def test_window_validity_bounds_suppression(self):
        graph, source, distinct, sink, results = build(with_window=True)
        feed(graph, source, [(1, 0.0), (1, 10.0), (1, 100.0)])
        # Window size 50: the first key-1 entry expired at t=50.
        assert results == [1, 1]

    def test_state_tracks_live_keys(self):
        graph, source, distinct, sink, results = build(horizon=10.0)
        feed(graph, source, [(1, 0.0), (2, 1.0), (3, 50.0)])
        assert distinct.state_size() == 1  # keys 1 and 2 expired at t=50


class TestInheritedMetadata:
    def test_inherits_selectivity_measuring_dedup_rate(self):
        graph, source, distinct, sink, results = build()
        subscription = distinct.metadata.subscribe(md.SELECTIVITY)
        feed(graph, source, [(i % 2, float(i)) for i in range(10)])
        graph.clock.advance_by(25.0)
        assert subscription.get() == pytest.approx(0.2)  # 2 of 10 passed
        subscription.cancel()

    def test_new_item_available(self):
        graph, source, distinct, sink, results = build()
        with distinct.metadata.subscribe(INDEX_ENTRIES) as subscription:
            feed(graph, source, [(1, 0.0), (2, 1.0)])
            assert subscription.get() == 2

    def test_memory_usage_overridden_to_include_index(self):
        """The Section 4.4.2 example: the specialised operator's memory item
        reflects its additional data structure."""
        graph, source, distinct, sink, results = build()
        with distinct.metadata.subscribe(md.MEMORY_USAGE) as subscription:
            feed(graph, source, [(1, 0.0), (2, 1.0), (3, 2.0)])
            assert subscription.get() == 3 * _INDEX_ENTRY_BYTES

    def test_plain_filter_memory_stays_zero(self):
        """Contrast: the base class' inherited definition reports 0 for a
        stateless filter, proving the override is per-subclass."""
        from repro.operators.filter import Filter

        graph = QueryGraph()
        source = graph.add(Source("s", Schema(("k",))))
        plain = graph.add(Filter("plain", lambda e: True))
        sink = graph.add(Sink("out"))
        graph.connect(source, plain)
        graph.connect(plain, sink)
        graph.freeze()
        with plain.metadata.subscribe(md.MEMORY_USAGE) as subscription:
            assert subscription.get() == 0
