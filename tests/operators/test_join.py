"""Tests for the sliding-window join and its Figure 3 metadata."""

from __future__ import annotations

import pytest

from repro.common.errors import GraphError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.join import SlidingWindowJoin
from repro.operators.sweeparea import PROBE_FRACTION, HashSweepArea, ListSweepArea
from repro.operators.window import TimeWindow


def join_pipeline(impl="nested-loops", window=100.0, key=True):
    graph = QueryGraph()
    s0 = graph.add(Source("s0", Schema(("k",), element_size=10)))
    s1 = graph.add(Source("s1", Schema(("k",), element_size=20)))
    w0 = graph.add(TimeWindow("w0", window))
    w1 = graph.add(TimeWindow("w1", window))
    join = graph.add(SlidingWindowJoin(
        "join", impl=impl,
        key_fn=(lambda e: e.field("k")) if key else None,
    ))
    results = []
    sink = graph.add(Sink("out", callback=lambda e: results.append(e.payload)))
    for a, b in ((s0, w0), (s1, w1), (w0, join), (w1, join), (join, sink)):
        graph.connect(a, b)
    graph.freeze()
    return graph, s0, s1, join, sink, results


def drain(graph):
    nodes = graph.operators() + graph.sinks()
    while any(node.step() for node in nodes):
        pass


class TestJoinSemantics:
    def test_matching_keys_join(self):
        graph, s0, s1, join, sink, results = join_pipeline()
        s0.produce({"k": 1}, 0.0)
        s1.produce({"k": 1}, 1.0)
        s1.produce({"k": 2}, 2.0)
        drain(graph)
        assert len(results) == 1
        assert results[0]["k"] == 1
        assert results[0]["k_r"] == 1

    def test_window_expiry_prevents_old_matches(self):
        graph, s0, s1, join, sink, results = join_pipeline(window=10.0)
        s0.produce({"k": 1}, 0.0)
        drain(graph)
        s1.produce({"k": 1}, 50.0)  # left element expired at t=10
        drain(graph)
        assert results == []

    def test_symmetric_match_order(self):
        """Payload field order must reflect ports, not arrival order."""
        graph, s0, s1, join, sink, results = join_pipeline()
        s1.produce({"k": 3}, 0.0)   # right arrives first
        s0.produce({"k": 3}, 1.0)
        drain(graph)
        assert len(results) == 1
        # Left ('s0') fields come first even though s1 arrived first.
        assert list(results[0].keys()) == ["k", "k_r"]

    def test_cross_product_without_key(self):
        graph, s0, s1, join, sink, results = join_pipeline(key=False)
        s0.produce({"k": 1}, 0.0)
        s0.produce({"k": 2}, 1.0)
        s1.produce({"k": 9}, 2.0)
        drain(graph)
        assert len(results) == 2

    def test_hash_and_list_produce_same_matches(self):
        inputs = [(0, {"k": i % 3}, float(i)) for i in range(10)]
        inputs += [(1, {"k": i % 3}, float(i) + 0.5) for i in range(10)]
        inputs.sort(key=lambda x: x[2])
        outcomes = {}
        for impl in ("nested-loops", "hash"):
            graph, s0, s1, join, sink, results = join_pipeline(impl=impl)
            for port, payload, t in inputs:
                (s0 if port == 0 else s1).produce(payload, t)
                drain(graph)
            outcomes[impl] = sorted(
                (r["k"], r["k_r"], r.get("seq", 0)) for r in results
            )
        assert outcomes["nested-loops"] == outcomes["hash"]

    def test_result_validity_is_min_expiry(self):
        graph, s0, s1, join, sink, results = join_pipeline(window=100.0)
        captured = []
        sink.callback = lambda e: captured.append(e)
        s0.produce({"k": 1}, 0.0)    # expires 100
        s1.produce({"k": 1}, 50.0)   # expires 150
        drain(graph)
        assert captured[0].expiry == 100.0
        assert captured[0].timestamp == 50.0

    def test_hash_requires_key_fn(self):
        with pytest.raises(GraphError):
            SlidingWindowJoin("j", impl="hash")

    def test_unknown_impl_rejected(self):
        with pytest.raises(GraphError):
            SlidingWindowJoin("j", impl="btree")

    def test_process_before_freeze_rejected(self):
        join = SlidingWindowJoin("j")
        from repro.graph.element import StreamElement

        with pytest.raises(GraphError):
            join.on_element(StreamElement({}, 0.0), 0)


class TestJoinModules:
    def test_impl_selects_sweep_type(self):
        _, _, _, nested, _, _ = join_pipeline(impl="nested-loops")
        assert all(isinstance(s, ListSweepArea) for s in nested.sweeps)
        _, _, _, hashed, _, _ = join_pipeline(impl="hash")
        assert all(isinstance(s, HashSweepArea) for s in hashed.sweeps)

    def test_get_module(self):
        _, _, _, join, _, _ = join_pipeline()
        assert join.get_module("sweep0") is join.sweeps[0]
        with pytest.raises(GraphError):
            join.get_module("sweep9")

    def test_sweep_element_sizes_from_upstream_schemas(self):
        _, _, _, join, _, _ = join_pipeline()
        assert join.sweeps[0].element_size == 10
        assert join.sweeps[1].element_size == 20


class TestJoinMetadata:
    def test_memory_usage_recurses_into_modules(self):
        graph, s0, s1, join, sink, results = join_pipeline()
        subscription = join.metadata.subscribe(md.MEMORY_USAGE)
        # The module items were auto-included.
        assert join.sweeps[0].metadata.is_included(md.MEMORY_USAGE)
        s0.produce({"k": 1}, 0.0)
        s1.produce({"k": 2}, 1.0)
        drain(graph)
        assert subscription.get() == 10 + 20
        subscription.cancel()
        assert not join.sweeps[0].metadata.is_included(md.MEMORY_USAGE)

    def test_est_cpu_includes_figure3_cascade(self):
        graph, s0, s1, join, sink, results = join_pipeline(impl="hash")
        subscription = join.metadata.subscribe(md.EST_CPU_USAGE)
        w0 = graph.node("w0")
        assert w0.metadata.is_included(md.EST_ELEMENT_VALIDITY)
        assert w0.metadata.is_included(md.WINDOW_SIZE)
        assert s0.metadata.is_included(md.EST_OUTPUT_RATE)
        assert join.metadata.is_included(md.PREDICATE_COST)
        assert join.sweeps[0].metadata.is_included(PROBE_FRACTION)
        subscription.cancel()
        assert not w0.metadata.is_included(md.WINDOW_SIZE)

    def test_est_cpu_matches_cost_model(self):
        graph, s0, s1, join, sink, results = join_pipeline(impl="nested-loops",
                                                           window=100.0)
        subscription = join.metadata.subscribe(md.EST_CPU_USAGE)
        # Feed both streams at 0.1 elements/unit for several periods; the
        # measured rates settle at 0.1 after the first periodic window.
        t = 0.0
        for i in range(40):
            t += 10.0
            graph.clock.advance_to(t)
            s0.produce({"k": i % 5}, t)
            s1.produce({"k": i % 5}, t)
            drain(graph)
        # r=0.1 each, v=100 each, list areas f=1: probes = 2*0.1*10 = 2/unit,
        # plus base bookkeeping 0.2 -> 2.2.
        assert subscription.get() == pytest.approx(2.2, rel=0.15)
        subscription.cancel()

    def test_pair_selectivity_override(self):
        graph, s0, s1, join, sink, results = join_pipeline(impl="nested-loops")
        subscription = join.metadata.subscribe(md.SELECTIVITY)
        for i in range(10):
            s0.produce({"k": i % 2}, float(i))
            s1.produce({"k": i % 2}, float(i) + 0.5)
            drain(graph)
        graph.clock.advance_by(join.metadata_period)
        value = subscription.get()
        assert 0.0 < value <= 1.0  # matches per examined pair
        subscription.cancel()

    def test_window_resize_retriggers_estimates(self):
        """Section 3.3 end-to-end: resource manager changes the window size,
        the join's CPU estimate refreshes through the dependency graph."""
        graph, s0, s1, join, sink, results = join_pipeline(window=100.0)
        subscription = join.metadata.subscribe(md.EST_CPU_USAGE)
        t = 0.0
        for i in range(20):
            t += 10.0
            graph.clock.advance_to(t)
            s0.produce({"k": 1}, t)
            s1.produce({"k": 1}, t)
            drain(graph)
        before = subscription.get()
        graph.node("w0").set_size(50.0)
        graph.node("w1").set_size(50.0)
        after = subscription.get()
        assert after < before  # smaller windows -> cheaper join
        assert after == pytest.approx(before / 2 + 0.1, rel=0.2)
        subscription.cancel()


class TestPlanMigration:
    def test_swap_preserves_state_and_results(self):
        graph, s0, s1, join, sink, results = join_pipeline(window=100.0)
        s0.produce({"k": 1}, 0.0)
        s1.produce({"k": 2}, 1.0)
        drain(graph)
        state_before = join.state_size()
        join.swap_inputs()
        assert join.state_size() == state_before
        # A new right element must still match the (migrated) left state.
        # After the swap, s0's stream feeds port 1, so matches still form.
        s1.produce({"k": 1}, 2.0)
        drain(graph)
        assert len(results) == 1
        assert join.migrations == 1

    def test_swap_reverses_wiring(self):
        graph, s0, s1, join, sink, results = join_pipeline()
        upstream_before = [n.name for n in join.upstream_nodes]
        join.swap_inputs()
        assert [n.name for n in join.upstream_nodes] == upstream_before[::-1]
        assert join.sweeps[0].name == "sweep0"

    def test_swap_before_freeze_rejected(self):
        import pytest as _pytest

        from repro.common.errors import GraphError

        join = SlidingWindowJoin("j")
        with _pytest.raises(GraphError):
            join.swap_inputs()

    def test_advisor_auto_migrates(self):
        from repro.adaptation.optimizer import PlanMigrationAdvisor
        from repro.runtime.simulation import SimulationExecutor
        from repro.sources.synthetic import ConstantRate, StreamDriver, UniformValues

        graph, s0, s1, join, sink, results = join_pipeline(window=50.0)
        advisor = PlanMigrationAdvisor(graph, ratio_threshold=3.0,
                                       auto_migrate=True)
        executor = SimulationExecutor(graph, [
            StreamDriver(s0, ConstantRate(2.0), UniformValues("k", 0, 5), seed=1),
            StreamDriver(s1, ConstantRate(0.2), UniformValues("k", 0, 5), seed=2),
        ])
        executor.every(50.0, advisor.check)
        executor.run_until(500.0)
        assert join.migrations == 1
        # After migration the fast stream feeds port 1 (probe side flipped).
        assert join.upstream_nodes[1].name == "w0"
        advisor.close()
