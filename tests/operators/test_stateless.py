"""Tests for filter, map, project and union operators."""

from __future__ import annotations

import pytest

from repro.common.errors import SchemaError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.operators.filter import Filter
from repro.operators.map import Map
from repro.operators.project import Project
from repro.operators.union import Union


def run_pipeline(operator, payloads, schema=Schema(("x", "y"))):
    graph = QueryGraph()
    source = graph.add(Source("s", schema))
    op = graph.add(operator)
    results = []
    sink = graph.add(Sink("out", callback=lambda e: results.append(e.payload)))
    graph.connect(source, op)
    graph.connect(op, sink)
    graph.freeze()
    for i, payload in enumerate(payloads):
        source.produce(payload, float(i))
    while op.step() or sink.step():
        pass
    return graph, op, results


class TestFilter:
    def test_passes_matching_elements(self):
        _, op, results = run_pipeline(
            Filter("f", lambda e: e.field("x") > 2),
            [{"x": i, "y": 0} for i in range(5)],
        )
        assert [r["x"] for r in results] == [3, 4]
        assert op.passed == 2
        assert op.rejected == 3

    def test_schema_passthrough(self):
        graph, op, _ = run_pipeline(Filter("f", lambda e: True), [])
        assert op.output_schema.fields == ("x", "y")


class TestMap:
    def test_transforms_payload(self):
        _, _, results = run_pipeline(
            Map("m", lambda p: {"x": p["x"] * 10}),
            [{"x": 1, "y": 2}, {"x": 2, "y": 3}],
        )
        assert [r["x"] for r in results] == [10, 20]

    def test_schema_override(self):
        override = Schema(("z",), element_size=8)
        graph, op, _ = run_pipeline(Map("m", lambda p: p, output_schema=override), [])
        assert op.output_schema is override

    def test_preserves_timestamp_and_expiry(self):
        graph = QueryGraph()
        source = graph.add(Source("s", Schema(("x",))))
        mapper = graph.add(Map("m", lambda p: p))
        captured = []
        sink = graph.add(Sink("out", callback=captured.append))
        graph.connect(source, mapper)
        graph.connect(mapper, sink)
        graph.freeze()
        source.produce({"x": 1}, 5.0)
        mapper.step()
        sink.step()
        assert captured[0].timestamp == 5.0


class TestProject:
    def test_keeps_only_projected_fields(self):
        _, _, results = run_pipeline(
            Project("p", ["y"]),
            [{"x": 1, "y": 2}],
        )
        assert results == [{"y": 2}]

    def test_schema_shrinks(self):
        graph, op, _ = run_pipeline(Project("p", ["y"]), [])
        assert op.output_schema.fields == ("y",)
        assert op.output_schema.element_size < Schema(("x", "y")).element_size

    def test_missing_field_raises_on_schema(self):
        graph, op, _ = run_pipeline(Project("p", ["y"]), [])
        with pytest.raises(SchemaError):
            op.output_schema.project(["nope"])


class TestUnion:
    def test_merges_streams(self):
        graph = QueryGraph()
        s1 = graph.add(Source("s1", Schema(("x",))))
        s2 = graph.add(Source("s2", Schema(("x",))))
        union = graph.add(Union("u"))
        results = []
        sink = graph.add(Sink("out", callback=lambda e: results.append(e.field("x"))))
        graph.connect(s1, union)
        graph.connect(s2, union)
        graph.connect(union, sink)
        graph.freeze()
        s1.produce({"x": 1}, 0.0)
        s2.produce({"x": 2}, 0.0)
        while union.step() or sink.step():
            pass
        assert sorted(results) == [1, 2]

    def test_incompatible_schemas_rejected(self):
        graph = QueryGraph()
        s1 = graph.add(Source("s1", Schema(("x",))))
        s2 = graph.add(Source("s2", Schema(("y",))))
        union = graph.add(Union("u"))
        sink = graph.add(Sink("out"))
        graph.connect(s1, union)
        graph.connect(s2, union)
        graph.connect(union, sink)
        with pytest.raises(SchemaError):
            union.output_schema
