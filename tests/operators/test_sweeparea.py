"""Tests for sweep-area modules (Section 4.5)."""

from __future__ import annotations

import pytest

from repro.graph.element import StreamElement
from repro.metadata import catalogue as md
from repro.operators.sweeparea import PROBE_FRACTION, HashSweepArea, ListSweepArea


def element(key, t, validity=100.0):
    return StreamElement({"k": key}, t, t + validity)


def key_fn(e):
    return e.field("k")


class TestListSweepArea:
    def test_insert_and_len(self):
        area = ListSweepArea("s")
        area.insert(element(1, 0.0))
        area.insert(element(2, 1.0))
        assert len(area) == 2
        assert area.inserted == 2

    def test_expire_evicts_in_order(self):
        area = ListSweepArea("s")
        area.insert(element(1, 0.0, validity=10.0))
        area.insert(element(2, 5.0, validity=10.0))
        assert area.expire(12.0) == 1
        assert len(area) == 1
        assert area.evicted == 1

    def test_probe_examines_all(self):
        area = ListSweepArea("s")
        for i in range(5):
            area.insert(element(i, float(i)))
        matches, examined = area.probe(
            element(3, 10.0), lambda probe, stored: key_fn(probe) == key_fn(stored)
        )
        assert examined == 5
        assert [key_fn(m) for m in matches] == [3]
        assert area.probed == 5

    def test_probe_fraction_is_one(self):
        assert ListSweepArea("s").probe_fraction() == 1.0

    def test_memory_bytes(self):
        area = ListSweepArea("s", element_size=32)
        area.insert(element(1, 0.0))
        assert area.memory_bytes() == 32


class TestHashSweepArea:
    def test_probe_examines_only_bucket(self):
        area = HashSweepArea("s", key_fn)
        for i in range(10):
            area.insert(element(i % 2, float(i)))
        matches, examined = area.probe(
            element(0, 20.0), lambda probe, stored: True
        )
        assert examined == 5  # only the key-0 bucket
        assert len(matches) == 5

    def test_probe_missing_key(self):
        area = HashSweepArea("s", key_fn)
        area.insert(element(1, 0.0))
        matches, examined = area.probe(element(99, 1.0), lambda a, b: True)
        assert matches == []
        assert examined == 0

    def test_expire_maintains_buckets(self):
        area = HashSweepArea("s", key_fn)
        area.insert(element(1, 0.0, validity=10.0))
        area.insert(element(2, 0.0, validity=10.0))
        area.insert(element(1, 50.0, validity=10.0))
        assert area.expire(20.0) == 2
        assert len(area) == 1
        assert area.distinct_keys() == 1
        matches, _ = area.probe(element(1, 55.0), lambda a, b: True)
        assert len(matches) == 1

    def test_probe_fraction(self):
        area = HashSweepArea("s", key_fn)
        assert area.probe_fraction() == 0.0  # empty
        for i in range(4):
            area.insert(element(i, float(i)))
        assert area.probe_fraction() == pytest.approx(0.25)

    def test_expire_all_empties_structure(self):
        area = HashSweepArea("s", key_fn)
        for i in range(5):
            area.insert(element(i, 0.0, validity=1.0))
        area.expire(100.0)
        assert len(area) == 0
        assert area.distinct_keys() == 0


class TestModuleMetadata:
    def test_module_registry_items(self, system):
        area = HashSweepArea("sweep0", key_fn, element_size=16)
        registry = area.attach_metadata(system)
        with registry.subscribe(md.STATE_SIZE) as s:
            assert s.get() == 0
            area.insert(element(1, 0.0))
            assert s.get() == 1
        with registry.subscribe(md.MEMORY_USAGE) as s:
            assert s.get() == 16
        with registry.subscribe(md.IMPLEMENTATION_TYPE) as s:
            assert s.get() == "hash"
        with registry.subscribe(PROBE_FRACTION) as s:
            assert s.get() == pytest.approx(1.0)
        with registry.subscribe(md.MetadataKey("module.distinct_keys")) as s:
            assert s.get() == 1

    def test_list_area_has_no_distinct_keys_item(self, system):
        area = ListSweepArea("sweep0")
        registry = area.attach_metadata(system)
        assert md.MetadataKey("module.distinct_keys") not in registry.available_keys()


class TestNestedBucketIndex:
    def test_index_module_statistics(self, system):
        area = HashSweepArea("sweep0", key_fn)
        area.attach_metadata(system)
        for i in range(6):
            area.insert(element(i % 2, float(i)))
        index = area.get_module("index")
        assert index.distinct_keys() == 2
        assert index.max_bucket_size() == 3

    def test_nested_module_metadata_subscribable(self, system):
        from repro.operators.sweeparea import DISTINCT_KEYS, MAX_BUCKET_SIZE

        area = HashSweepArea("sweep0", key_fn)
        area.attach_metadata(system)
        index = area.get_module("index")
        with index.metadata.subscribe(MAX_BUCKET_SIZE) as subscription:
            area.insert(element(1, 0.0))
            area.insert(element(1, 1.0))
            assert subscription.get() == 2

    def test_join_reaches_two_levels_deep(self):
        """ModuleDep('sweep0.index', ...) — recursive module access from an
        operator item, the Section 4.5 nesting on a real plan."""
        from repro.graph.graph import QueryGraph
        from repro.graph.element import Schema
        from repro.graph.node import Sink, Source
        from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, ModuleDep
        from repro.operators.join import SlidingWindowJoin
        from repro.operators.sweeparea import MAX_BUCKET_SIZE
        from repro.operators.window import TimeWindow

        graph = QueryGraph()
        s0 = graph.add(Source("s0", Schema(("k",))))
        s1 = graph.add(Source("s1", Schema(("k",))))
        w0, w1 = graph.add(TimeWindow("w0", 50.0)), graph.add(TimeWindow("w1", 50.0))
        join = graph.add(SlidingWindowJoin("join", impl="hash",
                                           key_fn=lambda e: e.field("k")))
        sink = graph.add(Sink("out"))
        for a, b in ((s0, w0), (s1, w1), (w0, join), (w1, join), (join, sink)):
            graph.connect(a, b)
        graph.freeze()

        SKEW = MetadataKey("operator.build_skew")
        join.metadata.define(MetadataDefinition(
            SKEW, Mechanism.ON_DEMAND,
            dependencies=[ModuleDep("sweep0.index", MAX_BUCKET_SIZE)],
            compute=lambda ctx: ctx.value(MAX_BUCKET_SIZE),
        ))
        with join.metadata.subscribe(SKEW) as subscription:
            assert join.sweeps[0].get_module("index").metadata.is_included(
                MAX_BUCKET_SIZE
            )
            s0.produce({"k": 7}, 0.0)
            while any(n.step() for n in graph.operators() + graph.sinks()):
                pass
            assert subscription.get() == 1
        assert not join.sweeps[0].get_module("index").metadata.is_included(
            MAX_BUCKET_SIZE
        )
