"""Tests for window operators (Section 2.5, Section 3.3)."""

from __future__ import annotations

import pytest

from repro.common.errors import GraphError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.window import CountWindow, TimeWindow


def window_pipeline(window):
    graph = QueryGraph()
    source = graph.add(Source("s", Schema(("x",))))
    win = graph.add(window)
    captured = []
    sink = graph.add(Sink("out", callback=captured.append))
    graph.connect(source, win)
    graph.connect(win, sink)
    graph.freeze()
    return graph, source, win, sink, captured


def push(graph, source, win, sink, payload, t):
    source.produce(payload, t)
    while win.step() or sink.step():
        pass


class TestTimeWindow:
    def test_assigns_validity(self):
        graph, source, win, sink, captured = window_pipeline(TimeWindow("w", 50.0))
        push(graph, source, win, sink, {"x": 1}, 10.0)
        assert captured[0].timestamp == 10.0
        assert captured[0].expiry == 60.0
        assert captured[0].validity == 50.0

    def test_invalid_size_rejected(self):
        with pytest.raises(GraphError):
            TimeWindow("w", 0.0)
        win = TimeWindow("w", 10.0)
        with pytest.raises(GraphError):
            win.set_size(-1.0)

    def test_set_size_affects_future_elements(self):
        graph, source, win, sink, captured = window_pipeline(TimeWindow("w", 50.0))
        push(graph, source, win, sink, {"x": 1}, 0.0)
        win.set_size(20.0)
        push(graph, source, win, sink, {"x": 2}, 1.0)
        assert captured[0].validity == 50.0
        assert captured[1].validity == 20.0

    def test_window_size_metadata_follows_set_size(self):
        graph, source, win, sink, captured = window_pipeline(TimeWindow("w", 50.0))
        with win.metadata.subscribe(md.WINDOW_SIZE) as s:
            assert s.get() == 50.0
            win.set_size(25.0)
            assert s.get() == 25.0

    def test_set_size_triggers_est_validity(self):
        """The Section 3.3 cascade: window.size event -> est validity."""
        graph, source, win, sink, captured = window_pipeline(TimeWindow("w", 50.0))
        subscription = win.metadata.subscribe(md.EST_ELEMENT_VALIDITY)
        assert subscription.get() == 50.0
        win.set_size(30.0)
        assert subscription.get() == 30.0  # refreshed without re-subscribe
        subscription.cancel()

    def test_measured_validity(self):
        graph, source, win, sink, captured = window_pipeline(TimeWindow("w", 50.0))
        subscription = win.metadata.subscribe(md.ELEMENT_VALIDITY)
        push(graph, source, win, sink, {"x": 1}, 0.0)
        push(graph, source, win, sink, {"x": 2}, 10.0)
        graph.clock.advance_by(win.metadata_period + 1)
        assert subscription.get() == pytest.approx(50.0)
        subscription.cancel()

    def test_est_output_rate_forwards_upstream(self):
        graph, source, win, sink, captured = window_pipeline(TimeWindow("w", 50.0))
        subscription = win.metadata.subscribe(md.EST_OUTPUT_RATE)
        # Inter-node recursion reached the source's items.
        assert source.metadata.is_included(md.EST_OUTPUT_RATE)
        assert source.metadata.is_included(md.OUTPUT_RATE)
        for i in range(10):
            push(graph, source, win, sink, {"x": i}, graph.clock.now())
            graph.clock.advance_by(10.0)
        assert subscription.get() == pytest.approx(0.1, rel=0.05)
        subscription.cancel()
        assert not source.metadata.is_included(md.OUTPUT_RATE)


class TestCountWindow:
    def test_displaced_element_expires(self):
        graph, source, win, sink, captured = window_pipeline(CountWindow("w", 2))
        for i, t in enumerate((0.0, 1.0, 2.0)):
            push(graph, source, win, sink, {"x": i}, t)
        # First element was displaced when the third arrived (t=2.0).
        assert captured[0].expiry == 2.0
        assert captured[1].expiry == float("inf")
        assert captured[2].expiry == float("inf")

    def test_state_size_bounded_by_count(self):
        graph, source, win, sink, captured = window_pipeline(CountWindow("w", 3))
        for i in range(10):
            push(graph, source, win, sink, {"x": i}, float(i))
        assert win.state_size() == 3

    def test_invalid_count(self):
        with pytest.raises(GraphError):
            CountWindow("w", 0)

    def test_est_validity_from_rate(self):
        graph, source, win, sink, captured = window_pipeline(CountWindow("w", 5))
        subscription = win.metadata.subscribe(md.EST_ELEMENT_VALIDITY)
        for i in range(10):
            push(graph, source, win, sink, {"x": i}, graph.clock.now())
            graph.clock.advance_by(10.0)
        # rate 0.1 -> validity estimate = 5 / 0.1 = 50 time units
        assert subscription.get() == pytest.approx(50.0, rel=0.1)
        subscription.cancel()
