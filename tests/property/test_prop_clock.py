"""Property tests for the virtual clock's timer queue."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock


class TestTimerOrdering:
    @given(deadlines=st.lists(st.floats(0.0, 1e4, allow_nan=False),
                              min_size=1, max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_fire_order_is_sorted(self, deadlines):
        clock = VirtualClock()
        fired: list[float] = []
        for d in deadlines:
            clock.schedule_at(d, lambda d=d: fired.append(d))
        clock.run_until_idle()
        assert fired == sorted(deadlines)
        assert clock.now() == max(deadlines)

    @given(
        deadlines=st.lists(st.floats(0.0, 100.0, allow_nan=False),
                           min_size=1, max_size=40),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_cancelled_never_fire(self, deadlines, cancel_mask):
        clock = VirtualClock()
        fired: list[int] = []
        timers = [
            clock.schedule_at(d, lambda i=i: fired.append(i))
            for i, d in enumerate(deadlines)
        ]
        for timer, cancel in zip(timers, cancel_mask):
            if cancel:
                timer.cancel()
        clock.run_until_idle()
        expected = {
            i for i, d in enumerate(deadlines)
            if i >= len(cancel_mask) or not cancel_mask[i]
        }
        assert set(fired) == expected

    @given(
        chunks=st.lists(st.floats(0.01, 50.0, allow_nan=False),
                        min_size=1, max_size=20),
        deadlines=st.lists(st.floats(0.0, 500.0, allow_nan=False), max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_incremental_advance_equals_single_advance(self, chunks, deadlines):
        def run(advance_steps):
            clock = VirtualClock()
            fired = []
            for d in deadlines:
                clock.schedule_at(d, lambda d=d: fired.append(d))
            for step in advance_steps:
                clock.advance_by(step)
            return fired, clock.now()

        total = sum(chunks)
        incremental, t1 = run(chunks)
        single, t2 = run([total])
        assert incremental == single
        assert t1 == t2

    @given(seed_deadline=st.floats(0.0, 10.0, allow_nan=False),
           gaps=st.lists(st.floats(0.1, 5.0, allow_nan=False),
                         min_size=1, max_size=15))
    @settings(max_examples=80, deadline=None)
    def test_rescheduling_chain_observes_monotone_time(self, seed_deadline, gaps):
        clock = VirtualClock()
        seen: list[float] = []
        remaining = list(gaps)

        def fire():
            seen.append(clock.now())
            if remaining:
                clock.schedule_after(remaining.pop(0), fire)

        clock.schedule_at(seed_deadline, fire)
        clock.run_until_idle()
        assert seen == sorted(seen)
        assert len(seen) == len(gaps) + 1
