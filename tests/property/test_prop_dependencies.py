"""Property-based tests for the pub-sub dependency machinery.

Invariants checked under random dependency DAGs and random
subscribe/unsubscribe sequences:

1. The included set always equals the dependency closure of the actively
   subscribed items (automatic inclusion, Section 2.4).
2. Every handler's inclusion counter equals its consumer subscriptions plus
   one per dependency edge from an included dependent (handler sharing,
   Section 2.1).
3. Cancelling everything empties the system completely — no leaked handlers,
   probes or periodic tasks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import VirtualTimeScheduler

N_ITEMS = 8


class _Owner:
    name = "prop-node"


def build_registry(edges: set[tuple[int, int]]):
    """Create one registry with items 0..N-1 and dependency edges i -> j
    (i depends on j) for j < i — acyclic by construction."""
    clock = VirtualClock()
    system = MetadataSystem(clock, VirtualTimeScheduler(clock))
    owner = _Owner()
    registry = MetadataRegistry(owner, system)
    owner.metadata = registry
    keys = [MetadataKey(f"item{i}") for i in range(N_ITEMS)]
    for i in range(N_ITEMS):
        deps = [SelfDep(keys[j]) for (a, j) in sorted(edges) if a == i]
        if deps:
            registry.define(MetadataDefinition(
                keys[i], Mechanism.TRIGGERED,
                compute=lambda ctx: sum(ctx.values(k) for k in []) or 0,
                dependencies=deps,
            ))
        else:
            registry.define(MetadataDefinition(
                keys[i], Mechanism.STATIC, value=i,
            ))
    return system, registry, keys


def closure(edges: set[tuple[int, int]], roots: set[int]) -> set[int]:
    out: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in out:
            continue
        out.add(node)
        stack.extend(j for (i, j) in edges if i == node)
    return out


edges_strategy = st.sets(
    st.tuples(st.integers(1, N_ITEMS - 1), st.integers(0, N_ITEMS - 1)).filter(
        lambda e: e[1] < e[0]
    ),
    max_size=14,
)

# A sequence of operations: subscribe to item k (positive) or cancel the
# oldest active subscription to item k (negative encoding handled below).
ops_strategy = st.lists(
    st.tuples(st.booleans(), st.integers(0, N_ITEMS - 1)), min_size=1, max_size=40
)


class TestInclusionInvariants:
    @given(edges=edges_strategy, ops=ops_strategy)
    @settings(max_examples=120, deadline=None)
    def test_included_set_is_closure_of_subscriptions(self, edges, ops):
        system, registry, keys = build_registry(edges)
        active: dict[int, list] = {i: [] for i in range(N_ITEMS)}
        for is_subscribe, item in ops:
            if is_subscribe:
                active[item].append(registry.subscribe(keys[item]))
            elif active[item]:
                active[item].pop(0).cancel()

            roots = {i for i, subs in active.items() if subs}
            expected = closure(edges, roots)
            included = {int(k.name[4:]) for k in registry.included_keys()}
            assert included == expected

        # Counter invariant: consumer subs + one per dependent edge.
        for i in range(N_ITEMS):
            if not registry.is_included(keys[i]):
                continue
            handler = registry.handler(keys[i])
            dependent_edges = 0
            for j in range(N_ITEMS):
                if registry.is_included(keys[j]):
                    dependent_edges += sum(
                        1 for (a, b) in edges if a == j and b == i
                    )
            assert handler.include_count == len(active[i]) + dependent_edges
            assert handler.consumer_count == len(active[i])

        # Tear-down: nothing leaks.
        for subs in active.values():
            while subs:
                subs.pop().cancel()
        assert registry.included_keys() == []
        assert system.included_handler_count == 0

    @given(edges=edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_subscribe_unsubscribe_roundtrip_identity(self, edges):
        system, registry, keys = build_registry(edges)
        for i in range(N_ITEMS):
            subscription = registry.subscribe(keys[i])
            assert registry.is_included(keys[i])
            subscription.cancel()
            assert registry.included_keys() == []
            assert system.included_handler_count == 0

    @given(edges=edges_strategy, order=st.permutations(range(N_ITEMS)))
    @settings(max_examples=60, deadline=None)
    def test_cancel_order_does_not_matter(self, edges, order):
        system, registry, keys = build_registry(edges)
        subscriptions = [registry.subscribe(keys[i]) for i in range(N_ITEMS)]
        for i in order:
            subscriptions[i].cancel()
        assert registry.included_keys() == []
        assert system.included_handler_count == 0
        assert system.handlers_created == system.handlers_removed
