"""Property test: DistinctFilter matches a reference dedup model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.element import StreamElement
from repro.operators.distinct import DistinctFilter

# (key, time-gap) event stream with non-decreasing timestamps.
events = st.lists(
    st.tuples(st.integers(0, 5), st.floats(0.0, 20.0, allow_nan=False)),
    min_size=1, max_size=60,
)
horizons = st.floats(1.0, 50.0, allow_nan=False)


class TestDistinctModel:
    @given(events=events, horizon=horizons)
    @settings(max_examples=150, deadline=None)
    def test_matches_reference_model(self, events, horizon):
        distinct = DistinctFilter("d", lambda e: e.field("k"), horizon=horizon)
        emitted = []
        distinct.emit = lambda element: emitted.append(element)  # capture

        model_seen: dict[int, float] = {}
        model_emitted = []
        now = 0.0
        for key, gap in events:
            now += gap
            # Reference model: evict expired, pass first occurrence.
            expired = [k for k, until in model_seen.items() if until <= now]
            for k in expired:
                del model_seen[k]
            if key not in model_seen:
                model_seen[key] = now + horizon
                model_emitted.append((key, now))

            distinct.on_element(StreamElement({"k": key}, now), 0)

        assert [(e.field("k"), e.timestamp) for e in emitted] == model_emitted
        assert distinct.state_size() == len(model_seen)
        assert distinct.passed == len(model_emitted)
        assert distinct.rejected == len(events) - len(model_emitted)

    @given(events=events)
    @settings(max_examples=60, deadline=None)
    def test_unbounded_horizon_emits_each_key_once(self, events):
        distinct = DistinctFilter("d", lambda e: e.field("k"), horizon=None)
        emitted = []
        distinct.emit = lambda element: emitted.append(element)
        now = 0.0
        for key, gap in events:
            now += gap
            distinct.on_element(StreamElement({"k": key}, now), 0)
        keys = [e.field("k") for e in emitted]
        assert len(keys) == len(set(keys))
        assert set(keys) == {key for key, _ in events}
