"""Property tests for inclusion invariants across node boundaries.

Random layered topologies: L layers of nodes, each node's items depending on
items of nodes in the previous layer (inter-node) and on local items
(intra-node).  The global invariants of the pub-sub architecture must hold
regardless of topology and subscription order:

* the included set equals the dependency closure of active subscriptions,
* exclusion is exactly symmetric (no leaked handlers anywhere), and
* cross-node notification edges are torn down with the handlers.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.metadata.item import (
    Mechanism,
    MetadataDefinition,
    MetadataKey,
    NodeDep,
    SelfDep,
)
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import VirtualTimeScheduler

LAYERS = 3
NODES_PER_LAYER = 2
ITEMS_PER_NODE = 2

BASE = MetadataKey("base")
DERIVED = [MetadataKey(f"derived{i}") for i in range(ITEMS_PER_NODE)]


class _Owner:
    def __init__(self, name):
        self.name = name
        self.metadata = None

    def __repr__(self):
        return f"_Owner({self.name})"


def build_topology(edge_choices):
    """Layered nodes; ``edge_choices`` picks the upstream target per edge."""
    clock = VirtualClock()
    system = MetadataSystem(clock, VirtualTimeScheduler(clock))
    layers: list[list[_Owner]] = []
    choice_iter = iter(edge_choices)
    for layer_index in range(LAYERS):
        layer = []
        for node_index in range(NODES_PER_LAYER):
            owner = _Owner(f"n{layer_index}_{node_index}")
            owner.metadata = MetadataRegistry(owner, system)
            owner.metadata.define(MetadataDefinition(
                BASE, Mechanism.STATIC, value=layer_index,
            ))
            for item_index, key in enumerate(DERIVED):
                deps = [SelfDep(BASE)]
                if layer_index > 0:
                    target = layers[layer_index - 1][
                        next(choice_iter) % NODES_PER_LAYER
                    ]
                    dep_key = DERIVED[next(choice_iter) % ITEMS_PER_NODE]
                    deps.append(NodeDep(target, dep_key))
                owner.metadata.define(MetadataDefinition(
                    key, Mechanism.TRIGGERED,
                    compute=lambda ctx: 1,
                    dependencies=deps,
                ))
            layer.append(owner)
        layers.append(layer)
    return system, layers


N_EDGE_CHOICES = LAYERS * NODES_PER_LAYER * ITEMS_PER_NODE * 2

topology = st.lists(st.integers(0, 97), min_size=N_EDGE_CHOICES,
                    max_size=N_EDGE_CHOICES)
subscription_plan = st.lists(
    st.tuples(st.integers(0, LAYERS - 1), st.integers(0, NODES_PER_LAYER - 1),
              st.integers(0, ITEMS_PER_NODE - 1)),
    min_size=1, max_size=10,
)


class TestCrossNodeInvariants:
    @given(edges=topology, plan=subscription_plan)
    @settings(max_examples=80, deadline=None)
    def test_closure_and_symmetric_teardown(self, edges, plan):
        system, layers = build_topology(edges)
        subscriptions = []
        for layer, node, item in plan:
            registry = layers[layer][node].metadata
            subscriptions.append(registry.subscribe(DERIVED[item]))

        # Every included handler is reachable from some subscription.
        live_ids = set()
        frontier = [s.handler for s in subscriptions]
        while frontier:
            handler = frontier.pop()
            if id(handler) in live_ids:
                continue
            live_ids.add(id(handler))
            frontier.extend(dep for _, dep in handler.dependency_handlers)
        assert system.included_handler_count == len(live_ids)

        # Dependents bookkeeping: every dependency edge is mirrored.
        for layer in layers:
            for owner in layer:
                for key in owner.metadata.included_keys():
                    handler = owner.metadata.handler(key)
                    for _, dep in handler.dependency_handlers:
                        assert handler in dep.dependents()

        for subscription in subscriptions:
            subscription.cancel()
        assert system.included_handler_count == 0
        for layer in layers:
            for owner in layer:
                assert owner.metadata.included_keys() == []

    @given(edges=topology)
    @settings(max_examples=40, deadline=None)
    def test_subscribe_all_everywhere_then_teardown(self, edges):
        system, layers = build_topology(edges)
        subscriptions = system.subscribe_all()
        assert system.included_handler_count == LAYERS * NODES_PER_LAYER * (
            ITEMS_PER_NODE + 1
        )
        for subscription in subscriptions:
            subscription.cancel()
        assert system.included_handler_count == 0
