"""Property tests for triggered-update propagation over random DAGs.

For a random dependency DAG of triggered sum-items over one static leaf,
a change to the leaf must leave every included item holding exactly the
value a direct recomputation of the whole DAG would produce — i.e. waves
deliver glitch-free, topologically consistent updates (Section 3.2.3).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.metadata.item import Mechanism, MetadataDefinition, MetadataKey, SelfDep
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import VirtualTimeScheduler

N = 7  # item 0 is the leaf; items 1..N-1 depend on lower-numbered items


class _Owner:
    name = "prop"


edges_strategy = st.sets(
    st.tuples(st.integers(1, N - 1), st.integers(0, N - 1)).filter(
        lambda e: e[1] < e[0]
    ),
    min_size=1,
    max_size=15,
)


def build(edges, leaf_state):
    clock = VirtualClock()
    system = MetadataSystem(clock, VirtualTimeScheduler(clock))
    owner = _Owner()
    registry = MetadataRegistry(owner, system)
    owner.metadata = registry
    keys = [MetadataKey(f"i{i}") for i in range(N)]
    registry.define(MetadataDefinition(
        keys[0], Mechanism.ON_DEMAND, compute=lambda ctx: leaf_state["value"],
    ))
    dep_map: dict[int, list[int]] = {i: [] for i in range(N)}
    for i, j in sorted(edges):
        dep_map[i].append(j)
    for i in range(1, N):
        deps = dep_map[i] or [0]

        def compute(ctx, i=i, deps=tuple(deps)):
            # Sum of dependencies plus the item index, so values differ.
            return sum(ctx.value(MetadataKey(f"i{j}")) for j in set(deps)) + i

        registry.define(MetadataDefinition(
            keys[i], Mechanism.TRIGGERED, compute=compute,
            dependencies=[SelfDep(keys[j]) for j in deps],
        ))
    return registry, keys, {i: (dep_map[i] or [0]) for i in range(1, N)}


def reference_values(dep_map, leaf_value):
    values = {0: leaf_value}
    for i in range(1, N):
        values[i] = sum(values[j] for j in set(dep_map[i])) + i
    return values


class TestGlitchFreedom:
    @given(edges=edges_strategy, leaf_values=st.lists(st.integers(-50, 50),
                                                      min_size=1, max_size=6))
    @settings(max_examples=120, deadline=None)
    def test_wave_matches_full_recomputation(self, edges, leaf_values):
        leaf_state = {"value": 0}
        registry, keys, dep_map = build(edges, leaf_state)
        top_subscriptions = [registry.subscribe(keys[i]) for i in range(1, N)]
        for value in leaf_values:
            leaf_state["value"] = value
            registry.notify_changed(keys[0])
            expected = reference_values(dep_map, value)
            for i in range(1, N):
                assert registry.handler(keys[i]).peek() == expected[i], (
                    f"item {i} inconsistent after leaf={value}"
                )
        for subscription in top_subscriptions:
            subscription.cancel()
        assert registry.included_keys() == []
