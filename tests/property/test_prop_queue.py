"""Property test: StreamQueue behaves like a bounded FIFO reference model."""

from __future__ import annotations

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.element import StreamElement
from repro.graph.queues import StreamQueue


class _Node:
    def __init__(self, name):
        self.name = name


ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 1000)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=100,
)


class TestQueueModel:
    @given(ops=ops, capacity=st.one_of(st.none(), st.integers(1, 10)))
    @settings(max_examples=150, deadline=None)
    def test_matches_reference_deque(self, ops, capacity):
        queue = StreamQueue(_Node("p"), _Node("c"), 0, capacity=capacity)
        model: deque = deque()
        pushed = popped = dropped = 0
        for op, value in ops:
            if op == "push":
                element = StreamElement({"v": value}, float(pushed))
                accepted = queue.push(element)
                if capacity is not None and len(model) >= capacity:
                    assert not accepted
                    dropped += 1
                else:
                    assert accepted
                    model.append(value)
                    pushed += 1
            else:
                element = queue.pop()
                if model:
                    assert element is not None
                    assert element.field("v") == model.popleft()
                    popped += 1
                else:
                    assert element is None
            assert len(queue) == len(model)
        assert queue.enqueued == pushed
        assert queue.dequeued == popped
        assert queue.dropped == dropped
