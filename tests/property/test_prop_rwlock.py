"""Property test: the RW lock's reentrancy bookkeeping under random nesting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import LockUpgradeError
from repro.common.rwlock import ReentrantRWLock

# Random sequences of lock operations executed by a single thread.  The model
# tracks what should be held; the lock must agree and never deadlock.
ops = st.lists(st.sampled_from(["ar", "rr", "aw", "rw"]), max_size=40)


class TestSingleThreadModel:
    @given(ops=ops)
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_model(self, ops):
        lock = ReentrantRWLock("prop")
        reads = writes = 0
        for op in ops:
            if op == "ar":
                if writes == 0 and reads == 0:
                    lock.acquire_read()
                    reads += 1
                elif writes > 0 or reads > 0:
                    lock.acquire_read()  # reentrant or downgrade: must succeed
                    reads += 1
            elif op == "rr":
                if reads > 0:
                    lock.release_read()
                    reads -= 1
                else:
                    with pytest.raises(RuntimeError):
                        lock.release_read()
            elif op == "aw":
                if writes > 0:
                    lock.acquire_write()
                    writes += 1
                elif reads > 0:
                    with pytest.raises(LockUpgradeError):
                        lock.acquire_write()
                else:
                    lock.acquire_write()
                    writes += 1
            elif op == "rw":
                if writes > 0:
                    lock.release_write()
                    writes -= 1
                else:
                    with pytest.raises(RuntimeError):
                        lock.release_write()

            expected = "write" if writes else ("read" if reads else None)
            assert lock.held_by_current_thread() == expected

        # Clean up so the lock ends balanced.
        while writes:
            lock.release_write()
            writes -= 1
        while reads:
            lock.release_read()
            reads -= 1
        assert lock.held_by_current_thread() is None
