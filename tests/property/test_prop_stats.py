"""Property tests: online statistics match numpy reference implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import Ewma, OnlineMean, OnlineVariance, SlidingWindowStats

floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestWelfordMatchesNumpy:
    @given(values=st.lists(floats, min_size=1, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_mean(self, values):
        mean = OnlineMean()
        for v in values:
            mean.add(v)
        assert mean.value() == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)

    @given(values=st.lists(floats, min_size=2, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_variance(self, values):
        var = OnlineVariance()
        for v in values:
            var.add(v)
        expected = np.var(values)
        assert var.variance() == pytest.approx(expected, rel=1e-6, abs=1e-6)
        assert var.sample_variance() == pytest.approx(
            np.var(values, ddof=1), rel=1e-6, abs=1e-6
        )

    @given(values=st.lists(floats, min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_variance_non_negative(self, values):
        var = OnlineVariance()
        for v in values:
            var.add(v)
        assert var.variance() >= 0.0


class TestEwmaProperties:
    @given(
        values=st.lists(st.floats(0.0, 1e3, allow_nan=False), min_size=1, max_size=50),
        alpha=st.floats(0.01, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_stays_within_observed_range(self, values, alpha):
        ewma = Ewma(alpha)
        for v in values:
            ewma.add(v)
        assert min(values) - 1e-9 <= ewma.value() <= max(values) + 1e-9

    @given(value=st.floats(-1e3, 1e3, allow_nan=False), alpha=st.floats(0.01, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_constant_input_is_fixed_point(self, value, alpha):
        ewma = Ewma(alpha)
        for _ in range(10):
            ewma.add(value)
        assert ewma.value() == pytest.approx(value)


class TestSlidingWindowStats:
    @given(
        samples=st.lists(
            st.tuples(st.floats(0.0, 100.0, allow_nan=False), floats),
            min_size=1,
            max_size=80,
        ),
        window=st.floats(1.0, 50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_mean_equals_reference(self, samples, window):
        samples = sorted(samples, key=lambda s: s[0])
        stats = SlidingWindowStats(window)
        for t, v in samples:
            stats.add(t, v)
        now = samples[-1][0]
        inside = [v for t, v in samples if t >= now - window]
        expected = float(np.mean(inside)) if inside else 0.0
        assert stats.mean(now) == pytest.approx(expected, rel=1e-9, abs=1e-6)
