"""Property test: list and hash sweep areas are observationally equivalent
for equi-join probing (the exchangeable-module contract of Section 4.5)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.element import StreamElement
from repro.operators.sweeparea import HashSweepArea, ListSweepArea


def key_fn(element: StreamElement):
    return element.field("k")


def equi(probe: StreamElement, stored: StreamElement) -> bool:
    return key_fn(probe) == key_fn(stored)


# Random stream of operations with non-decreasing timestamps: each step is
# (key, gap, validity, is_probe).
steps = st.lists(
    st.tuples(
        st.integers(0, 4),                               # key
        st.floats(0.0, 5.0, allow_nan=False),            # time gap
        st.floats(1.0, 20.0, allow_nan=False),           # validity span
        st.booleans(),                                   # probe instead of insert
    ),
    min_size=1,
    max_size=60,
)


class TestListHashEquivalence:
    @given(steps=steps)
    @settings(max_examples=150, deadline=None)
    def test_same_matches_and_state(self, steps):
        list_area = ListSweepArea("list")
        hash_area = HashSweepArea("hash", key_fn)
        now = 0.0
        for key, gap, validity, is_probe in steps:
            now += gap
            element = StreamElement({"k": key}, now, now + validity)
            for area in (list_area, hash_area):
                area.expire(now)
            if is_probe:
                list_matches, _ = list_area.probe(element, equi)
                hash_matches, hash_examined = hash_area.probe(element, equi)
                list_keys = sorted(m.timestamp for m in list_matches)
                hash_keys = sorted(m.timestamp for m in hash_matches)
                assert list_keys == hash_keys
                # Hash probing never examines more than the list does.
                assert hash_examined <= len(list_area)
            else:
                list_area.insert(element)
                hash_area.insert(element)
            assert len(list_area) == len(hash_area)
        # Final expiry flushes both identically.
        final = now + 100.0
        assert list_area.expire(final) == hash_area.expire(final)
        assert len(list_area) == len(hash_area) == 0

    @given(steps=steps)
    @settings(max_examples=60, deadline=None)
    def test_memory_consistency(self, steps):
        area = ListSweepArea("list", element_size=24)
        now = 0.0
        for key, gap, validity, is_probe in steps:
            now += gap
            if not is_probe:
                area.insert(StreamElement({"k": key}, now, now + validity))
            area.expire(now)
            assert area.memory_bytes() == len(area) * 24
            assert area.inserted - area.evicted == len(area)
