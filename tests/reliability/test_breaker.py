"""CircuitBreaker state machine, transition strings, and re-arm delays."""

from __future__ import annotations

from repro.common.clock import VirtualClock
from repro.reliability import CircuitBreaker, CircuitState, FailurePolicy


def make_breaker(clock=None, **policy_kwargs):
    policy_kwargs.setdefault("max_retries", 2)
    policy_kwargs.setdefault("jitter", 0.0)
    policy_kwargs.setdefault("probe_interval", 30.0)
    clock = clock or VirtualClock()
    return CircuitBreaker(FailurePolicy(**policy_kwargs), clock,
                          salt="n/k"), clock


class TestStateMachine:
    def test_starts_healthy_and_permissive(self):
        breaker, _ = make_breaker()
        assert breaker.state is CircuitState.HEALTHY
        assert breaker.allow_attempt() == (True, None)
        assert breaker.attempt_blocked() is False

    def test_failures_within_budget_mean_retrying(self):
        breaker, _ = make_breaker(max_retries=2)
        assert breaker.record_failure(RuntimeError("x")) is None
        assert breaker.state is CircuitState.RETRYING
        assert breaker.record_failure(RuntimeError("x")) is None
        assert breaker.consecutive_failures == 2
        assert breaker.allow_attempt() == (True, None)

    def test_exhausted_budget_opens_the_circuit(self):
        breaker, _ = make_breaker(max_retries=2)
        for _ in range(2):
            breaker.record_failure(RuntimeError("x"))
        assert breaker.record_failure(RuntimeError("boom")) == "open"
        assert breaker.state is CircuitState.QUARANTINED
        assert breaker.attempt_blocked() is True
        assert breaker.allow_attempt() == (False, None)

    def test_further_failures_while_quarantined_are_silent(self):
        breaker, _ = make_breaker(max_retries=0)
        assert breaker.record_failure(RuntimeError("x")) == "open"
        assert breaker.record_failure(RuntimeError("x")) is None

    def test_probe_due_promotes_to_half_open(self):
        breaker, clock = make_breaker(max_retries=0, probe_interval=30.0)
        breaker.record_failure(RuntimeError("x"))
        clock.advance_by(29.9)
        assert breaker.allow_attempt() == (False, None)
        clock.advance_by(0.2)
        assert breaker.attempt_blocked() is False
        assert breaker.allow_attempt() == (True, "half_open")
        assert breaker.state is CircuitState.HALF_OPEN

    def test_attempt_blocked_never_claims_the_probe_slot(self):
        breaker, clock = make_breaker(max_retries=0, probe_interval=30.0)
        breaker.record_failure(RuntimeError("x"))
        clock.advance_by(31.0)
        assert breaker.attempt_blocked() is False
        # Read-only planning check left the circuit quarantined; the actual
        # computing caller still gets the one half_open transition.
        assert breaker.state is CircuitState.QUARANTINED
        assert breaker.allow_attempt() == (True, "half_open")

    def test_failed_probe_reopens(self):
        breaker, clock = make_breaker(max_retries=0, probe_interval=30.0)
        breaker.record_failure(RuntimeError("x"))
        clock.advance_by(31.0)
        breaker.allow_attempt()
        assert breaker.record_failure(RuntimeError("still down")) == "reopen"
        assert breaker.state is CircuitState.QUARANTINED
        # The probe timer re-armed from now, not from the first quarantine.
        assert breaker.reschedule_delay() == 30.0

    def test_successful_probe_closes(self):
        breaker, clock = make_breaker(max_retries=0, probe_interval=30.0)
        breaker.record_failure(RuntimeError("x"))
        clock.advance_by(31.0)
        breaker.allow_attempt()
        assert breaker.record_success() == "close"
        assert breaker.state is CircuitState.HEALTHY
        assert breaker.consecutive_failures == 0

    def test_retrying_recovery_is_silent(self):
        breaker, _ = make_breaker(max_retries=2)
        breaker.record_failure(RuntimeError("x"))
        assert breaker.record_success() is None  # no gauge movement
        assert breaker.state is CircuitState.HEALTHY


class TestRescheduleDelay:
    def test_none_while_healthy_keeps_the_period_grid(self):
        breaker, _ = make_breaker()
        assert breaker.reschedule_delay() is None

    def test_backoff_while_retrying(self):
        breaker, _ = make_breaker(max_retries=3, backoff_base=5.0,
                                  backoff_factor=2.0)
        breaker.record_failure(RuntimeError("x"))
        assert breaker.reschedule_delay() == 5.0
        breaker.record_failure(RuntimeError("x"))
        assert breaker.reschedule_delay() == 10.0

    def test_quarantine_rest_counts_down(self):
        breaker, clock = make_breaker(max_retries=0, probe_interval=30.0)
        breaker.record_failure(RuntimeError("x"))
        assert breaker.reschedule_delay() == 30.0
        clock.advance_by(12.0)
        assert breaker.reschedule_delay() == 18.0
        clock.advance_by(100.0)
        assert breaker.reschedule_delay() == 0.0


class TestDescribe:
    def test_snapshot_fields(self):
        breaker, _ = make_breaker(max_retries=0)
        breaker.record_failure(ValueError("sensor exploded"))
        data = breaker.describe()
        assert data["state"] == "quarantined"
        assert data["failures"] == 1
        assert data["opens"] == 1
        assert data["last_error"].startswith("ValueError: sensor exploded")
        assert "next_probe_at" in data and "quarantined_at" in data

    def test_error_text_truncated(self):
        breaker, _ = make_breaker()
        breaker.record_failure(RuntimeError("y" * 500))
        assert len(breaker.describe()["last_error"]) <= 200
