"""FailurePolicy: validation and the deterministic backoff schedule."""

from __future__ import annotations

import pytest

from repro.common.errors import MetadataError
from repro.reliability import FailurePolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = FailurePolicy()
        assert policy.max_retries == 3
        assert policy.stale_while_failing is True

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"backoff_base": 10.0, "backoff_max": 5.0},
        {"jitter": -0.1},
        {"jitter": 1.0},
        {"attempt_deadline": 0.0},
        {"attempt_deadline": -1.0},
        {"probe_interval": 0.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(MetadataError):
            FailurePolicy(**kwargs)

    def test_frozen(self):
        policy = FailurePolicy()
        with pytest.raises(AttributeError):
            policy.max_retries = 5  # type: ignore[misc]


class TestBackoffDelay:
    def test_exponential_growth_without_jitter(self):
        policy = FailurePolicy(backoff_base=1.0, backoff_factor=2.0,
                               backoff_max=60.0, jitter=0.0)
        assert [policy.backoff_delay(n) for n in (1, 2, 3, 4)] == \
            [1.0, 2.0, 4.0, 8.0]

    def test_clamped_at_backoff_max(self):
        policy = FailurePolicy(backoff_base=1.0, backoff_factor=10.0,
                               backoff_max=25.0, jitter=0.0)
        assert policy.backoff_delay(3) == 25.0
        assert policy.backoff_delay(10) == 25.0

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(MetadataError):
            FailurePolicy().backoff_delay(0)

    def test_jitter_is_deterministic_per_salt_and_attempt(self):
        policy = FailurePolicy(backoff_base=10.0, jitter=0.5)
        a = policy.backoff_delay(1, salt="node/key")
        b = policy.backoff_delay(1, salt="node/key")
        assert a == b  # no global RNG involved

    def test_jitter_desynchronizes_salts(self):
        policy = FailurePolicy(backoff_base=10.0, jitter=0.5)
        delays = {policy.backoff_delay(1, salt=f"node/k{i}")
                  for i in range(8)}
        assert len(delays) > 1  # no thundering-herd retry alignment

    def test_jitter_bounded_by_amplitude(self):
        policy = FailurePolicy(backoff_base=10.0, backoff_factor=1.0,
                               jitter=0.2)
        for attempt in range(1, 20):
            delay = policy.backoff_delay(attempt, salt="s")
            assert 8.0 <= delay <= 12.0
