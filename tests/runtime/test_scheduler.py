"""Tests for operator scheduling strategies (round-robin and Chain [5])."""

from __future__ import annotations

import pytest

from repro.common.errors import GraphError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.operators.filter import Filter
from repro.runtime.scheduler import ChainScheduler, RoundRobinScheduler
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, SequentialValues, StreamDriver


def chain_graph(selectivity_first=0.1, selectivity_second=1.0):
    """source -> f1 (selective) -> f2 -> sink."""
    graph = QueryGraph(default_metadata_period=20.0)
    source = graph.add(Source("s", Schema(("x",))))
    f1 = graph.add(Filter("f1", lambda e: e.field("x") % 10 < selectivity_first * 10))
    f2 = graph.add(Filter("f2", lambda e: e.field("x") % 10 < selectivity_second * 10))
    sink = graph.add(Sink("out"))
    graph.connect(source, f1)
    graph.connect(f1, f2)
    graph.connect(f2, sink)
    return graph, source, f1, f2, sink


class TestRoundRobin:
    def test_requires_frozen_graph(self):
        graph, *_ = chain_graph()
        with pytest.raises(GraphError):
            RoundRobinScheduler().attach(graph)

    def test_returns_none_when_idle(self):
        graph, *_ = chain_graph()
        graph.freeze()
        scheduler = RoundRobinScheduler()
        scheduler.attach(graph)
        assert scheduler.next_node() is None

    def test_cycles_through_ready_nodes(self):
        graph, source, f1, f2, sink = chain_graph(1.0, 1.0)
        graph.freeze()
        scheduler = RoundRobinScheduler()
        scheduler.attach(graph)
        source.produce({"x": 0}, 0.0)
        picked = []
        while (node := scheduler.next_node()) is not None:
            picked.append(node.name)
            node.step()
        assert picked == ["f1", "f2", "out"]


class TestChain:
    def test_subscribes_to_selectivities(self):
        graph, source, f1, f2, sink = chain_graph()
        graph.freeze()
        scheduler = ChainScheduler()
        scheduler.attach(graph)
        assert f1.metadata.is_included(md.AVG_SELECTIVITY)
        assert f2.metadata.is_included(md.AVG_SELECTIVITY)
        scheduler.detach()
        assert not f1.metadata.is_included(md.AVG_SELECTIVITY)

    def test_prioritises_selective_operator(self):
        """With measured selectivities, the selective upstream filter gets a
        higher chain priority than the pass-through one."""
        graph, source, f1, f2, sink = chain_graph(0.1, 1.0)
        scheduler = ChainScheduler(refresh_interval=20.0)
        executor = SimulationExecutor(
            graph,
            [StreamDriver(source, ConstantRate(1.0), SequentialValues())],
            scheduler=scheduler,
        )
        executor.run_until(200.0)
        assert scheduler.priority(f1) > scheduler.priority(f2)

    def test_sinks_drained_first(self):
        graph, source, f1, f2, sink = chain_graph(1.0, 1.0)
        graph.freeze()
        scheduler = ChainScheduler()
        scheduler.attach(graph)
        source.produce({"x": 0}, 0.0)
        f1.step()
        f2.step()
        assert scheduler.next_node() is sink

    def test_chain_beats_round_robin_on_queue_memory(self):
        """The Chain claim [5]: prioritising selective operators keeps total
        queue occupancy lower under overload."""

        def run(scheduler_factory) -> float:
            graph, source, f1, f2, sink = chain_graph(0.1, 1.0)
            executor = SimulationExecutor(
                graph,
                [StreamDriver(source, ConstantRate(2.0), SequentialValues())],
                scheduler=scheduler_factory(),
                service_capacity=2.0,  # overloaded: 2 arrivals need >2 steps
            )
            total = 0.0
            samples = 0

            def sample(now):
                nonlocal total, samples
                total += graph.total_pending_elements()
                samples += 1

            executor.every(10.0, sample)
            executor.run_until(500.0)
            return total / samples

        chain_mean = run(lambda: ChainScheduler(refresh_interval=50.0))
        rr_mean = run(RoundRobinScheduler)
        assert chain_mean <= rr_mean

    def test_priority_recomputation_counted(self):
        graph, source, f1, f2, sink = chain_graph()
        scheduler = ChainScheduler(refresh_interval=10.0)
        executor = SimulationExecutor(
            graph,
            [StreamDriver(source, ConstantRate(0.5), SequentialValues())],
            scheduler=scheduler,
        )
        executor.run_until(100.0)
        assert scheduler.priority_recomputations >= 2
