"""Tests for the discrete-event simulation executor."""

from __future__ import annotations

import math

import pytest

from repro.common.clock import SystemClock
from repro.common.errors import SimulationError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.operators.filter import Filter
from repro.runtime.simulation import SimulationExecutor
from repro.sources.synthetic import ConstantRate, SequentialValues, StreamDriver


def build(service_capacity=math.inf, rate=0.1, predicate=lambda e: True):
    graph = QueryGraph()
    source = graph.add(Source("s", Schema(("x",))))
    fil = graph.add(Filter("f", predicate))
    sink = graph.add(Sink("out"))
    graph.connect(source, fil)
    graph.connect(fil, sink)
    executor = SimulationExecutor(
        graph,
        [StreamDriver(source, ConstantRate(rate), SequentialValues())],
        service_capacity=service_capacity,
    )
    return graph, source, fil, sink, executor


class TestBasicExecution:
    def test_elements_flow_to_sink(self):
        graph, source, fil, sink, executor = build()
        executor.run_until(100.0)
        assert source.produced == 10
        assert sink.received == 10
        assert graph.total_pending_elements() == 0

    def test_run_for_is_relative(self):
        graph, source, fil, sink, executor = build()
        executor.run_for(50.0)
        executor.run_for(50.0)
        assert executor.now == 100.0
        assert sink.received == 10

    def test_requires_virtual_clock(self):
        with pytest.raises(SimulationError):
            graph = QueryGraph()
            graph.clock = SystemClock()  # sabotage
            SimulationExecutor(graph, [])

    def test_unfrozen_graph_is_frozen_automatically(self):
        graph = QueryGraph()
        source = graph.add(Source("s", Schema(("x",))))
        sink = graph.add(Sink("out"))
        graph.connect(source, sink)
        executor = SimulationExecutor(graph, [])
        assert graph.frozen

    def test_filter_drops(self):
        graph, source, fil, sink, executor = build(
            predicate=lambda e: e.field("x") % 2 == 0
        )
        executor.run_until(100.0)
        assert sink.received == 5

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            build(service_capacity=0.0)


class TestServiceCapacity:
    def test_backlog_under_overload(self):
        # 1 element per time unit but only 0.5 operator steps per unit:
        # each element needs 2 steps (filter + sink), so queues must grow.
        graph, source, fil, sink, executor = build(service_capacity=0.5, rate=1.0)
        executor.run_until(200.0)
        assert source.produced == 200
        assert sink.received < 100
        assert graph.total_pending_elements() > 0

    def test_backlog_drains_after_burst(self):
        graph, source, fil, sink, executor = build(service_capacity=5.0, rate=1.0)
        executor.run_until(100.0)
        # Stop arrivals, allow the backlog to drain.
        executor.run_until(400.0)
        assert sink.received == source.produced

    def test_infinite_capacity_drains_immediately(self):
        graph, source, fil, sink, executor = build()
        executor.run_until(10.0)
        assert graph.total_pending_elements() == 0


class TestConsumerTasks:
    def test_every_runs_on_grid(self):
        graph, source, fil, sink, executor = build()
        samples = []
        executor.every(25.0, samples.append)
        executor.run_until(100.0)
        assert samples == [25.0, 50.0, 75.0, 100.0]

    def test_every_with_start(self):
        graph, source, fil, sink, executor = build()
        samples = []
        executor.every(10.0, samples.append, start=5.0)
        executor.run_until(30.0)
        assert samples == [5.0, 15.0, 25.0]

    def test_at_runs_once(self):
        graph, source, fil, sink, executor = build()
        fired = []
        executor.at(42.0, fired.append)
        executor.run_until(100.0)
        assert fired == [42.0]

    def test_invalid_interval(self):
        graph, *_, executor = build()
        with pytest.raises(SimulationError):
            executor.every(0.0, lambda now: None)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run():
            graph, source, fil, sink, executor = build(rate=0.5)
            executor.run_until(500.0)
            return (source.produced, sink.received, executor.steps_executed)

        assert run() == run()


class TestRebuildSchedule:
    def test_rebuild_with_chain_scheduler_resubscribes(self):
        """Chain holds metadata subscriptions; a rebuild after a runtime
        installation must cancel and re-create them for the new operator set."""
        from repro.metadata import catalogue as md
        from repro.operators.filter import Filter
        from repro.runtime.scheduler import ChainScheduler

        graph2 = QueryGraph(default_metadata_period=25.0)
        src = graph2.add(Source("s", Schema(("x",))))
        f1 = graph2.add(Filter("f1", lambda e: True))
        out = graph2.add(Sink("out"))
        graph2.connect(src, f1)
        graph2.connect(f1, out)
        scheduler = ChainScheduler(refresh_interval=50.0)
        executor = SimulationExecutor(
            graph2,
            [StreamDriver(src, ConstantRate(0.5), SequentialValues())],
            scheduler=scheduler,
        )
        assert f1.metadata.is_included(md.AVG_SELECTIVITY)

        f2, out2 = Filter("f2", lambda e: True), Sink("out2")
        graph2.install_query([f2, out2], [(f1, f2), (f2, out2)])
        executor.rebuild_schedule()
        # Both old and new operators are now chain-managed consumers.
        assert f1.metadata.is_included(md.AVG_SELECTIVITY)
        assert f2.metadata.is_included(md.AVG_SELECTIVITY)
        executor.run_until(200.0)
        assert out2.received > 0
        scheduler.detach()
        assert not f2.metadata.is_included(md.AVG_SELECTIVITY)
