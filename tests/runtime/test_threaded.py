"""Tests for the multi-threaded executor (Section 4.2's environment)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.clock import SystemClock, VirtualClock
from repro.common.errors import SimulationError
from repro.graph.element import Schema
from repro.graph.graph import QueryGraph
from repro.graph.node import Sink, Source
from repro.metadata import catalogue as md
from repro.metadata.locks import FineGrainedLockPolicy
from repro.metadata.scheduling import ThreadedScheduler
from repro.operators.filter import Filter
from repro.runtime.threaded import ThreadedExecutor
from repro.sources.synthetic import ConstantRate, SequentialValues, StreamDriver


def threaded_graph(lock_policy=None):
    clock = SystemClock()
    graph = QueryGraph(
        clock=clock,
        scheduler=ThreadedScheduler(clock, pool_size=1),
        lock_policy=lock_policy,
        default_metadata_period=0.05,  # seconds in threaded mode
    )
    source = graph.add(Source("s", Schema(("x",))))
    fil = graph.add(Filter("f", lambda e: True))
    sink = graph.add(Sink("out"))
    graph.connect(source, fil)
    graph.connect(fil, sink)
    return graph, source, fil, sink


class TestThreadedExecutor:
    def test_requires_system_clock(self):
        graph = QueryGraph(clock=VirtualClock())
        source = graph.add(Source("s", Schema(("x",))))
        sink = graph.add(Sink("out"))
        graph.connect(source, sink)
        with pytest.raises(SimulationError):
            ThreadedExecutor(graph, [])

    def test_elements_flow_under_threads(self):
        graph, source, fil, sink = threaded_graph()
        executor = ThreadedExecutor(
            graph, [StreamDriver(source, ConstantRate(200.0), SequentialValues())]
        )
        executor.run_for(0.3)
        assert source.produced > 10
        assert sink.received > 10
        assert sink.received <= source.produced

    def test_concurrent_metadata_readers(self):
        """Consumers hammer shared metadata while elements flow; the
        fine-grained RW locks must keep every read consistent."""
        graph, source, fil, sink = threaded_graph(
            lock_policy=FineGrainedLockPolicy()
        )
        graph.freeze()
        subscription = fil.metadata.subscribe(md.INPUT_RATE.q(0))
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    value = subscription.get()
                    if value < 0:
                        errors.append(value)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        readers = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
        executor = ThreadedExecutor(
            graph, [StreamDriver(source, ConstantRate(500.0), SequentialValues())]
        )
        with executor:
            for thread in readers:
                thread.start()
            time.sleep(0.3)
            stop.set()
        for thread in readers:
            thread.join(timeout=2.0)
        assert errors == []
        subscription.cancel()

    def test_periodic_updates_run_in_worker_pool(self):
        graph, source, fil, sink = threaded_graph()
        graph.freeze()
        subscription = source.metadata.subscribe(md.OUTPUT_RATE)
        executor = ThreadedExecutor(
            graph, [StreamDriver(source, ConstantRate(100.0), SequentialValues())]
        )
        with executor:
            time.sleep(0.3)
            rate = subscription.get()
        assert rate == pytest.approx(100.0, rel=0.5)
        assert subscription.handler.update_count > 2
        subscription.cancel()

    def test_start_twice_rejected(self):
        graph, source, fil, sink = threaded_graph()
        executor = ThreadedExecutor(graph, [])
        executor.start()
        with pytest.raises(SimulationError):
            executor.start()
        executor.stop()
