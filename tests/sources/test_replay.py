"""Tests for trace recording and replay."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sources.replay import Trace, TraceReplayDriver, record_trace
from repro.sources.synthetic import ConstantRate, PoissonArrivals, SequentialValues


class FakeSource:
    def __init__(self):
        self.events = []

    def produce(self, payload, timestamp):
        self.events.append((timestamp, payload))


class TestTrace:
    def test_sorted_on_construction(self):
        trace = Trace([(5.0, "b"), (1.0, "a")])
        assert [t for t, _ in trace] == [1.0, 5.0]

    def test_duration_and_rate(self):
        trace = Trace([(0.0, 1), (10.0, 2), (20.0, 3)])
        assert trace.duration() == 20.0
        assert trace.mean_rate() == pytest.approx(0.1)

    def test_empty_trace(self):
        trace = Trace([])
        assert len(trace) == 0
        assert trace.duration() == 0.0
        assert trace.mean_rate() == 0.0

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = Trace([(1.0, {"x": 1}), (2.5, {"x": 2})])
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.events == trace.events


class TestRecordTrace:
    def test_record_constant_rate(self):
        trace = record_trace(ConstantRate(0.1), SequentialValues(), duration=100.0)
        assert len(trace) == 10
        assert trace.events[0] == (10.0, {"x": 0, "seq": 0})

    def test_record_is_deterministic(self):
        a = record_trace(PoissonArrivals(0.5), SequentialValues(), 100.0, seed=3)
        b = record_trace(PoissonArrivals(0.5), SequentialValues(), 100.0, seed=3)
        assert a.events == b.events


class TestReplayDriver:
    def test_replays_bit_identically(self):
        trace = record_trace(PoissonArrivals(0.2), SequentialValues(), 200.0, seed=1)
        source = FakeSource()
        driver = TraceReplayDriver(source, trace)
        now = driver.first_arrival()
        while now != float("inf"):
            now = driver.produce(now)
        assert source.events == trace.events

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            TraceReplayDriver(FakeSource(), Trace([]))
