"""Tests for synthetic workload generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.sources.synthetic import (
    BurstyArrivals,
    ConstantRate,
    DriftingRate,
    NormalValues,
    PoissonArrivals,
    SequentialValues,
    StreamDriver,
    TraceArrivals,
    UniformValues,
    ZipfValues,
)


def collect_arrivals(process, duration, seed=0):
    rng = np.random.default_rng(seed)
    now = process.next_gap(0.0, rng)
    times = []
    while now <= duration:
        times.append(now)
        gap = process.next_gap(now, rng)
        if math.isinf(gap):
            break
        now += gap
    return times


class TestConstantRate:
    def test_exact_spacing(self):
        times = collect_arrivals(ConstantRate(0.1), 100.0)
        assert times == pytest.approx([10.0 * i for i in range(1, 11)])

    def test_invalid_rate(self):
        with pytest.raises(SimulationError):
            ConstantRate(0.0)

    def test_mean_rate(self):
        assert ConstantRate(0.25).mean_rate() == 0.25


class TestPoisson:
    def test_empirical_rate_close_to_nominal(self):
        times = collect_arrivals(PoissonArrivals(1.0), 5000.0, seed=42)
        assert len(times) / 5000.0 == pytest.approx(1.0, rel=0.1)

    def test_deterministic_under_seed(self):
        a = collect_arrivals(PoissonArrivals(0.5), 200.0, seed=7)
        b = collect_arrivals(PoissonArrivals(0.5), 200.0, seed=7)
        assert a == b

    def test_invalid_rate(self):
        with pytest.raises(SimulationError):
            PoissonArrivals(-1.0)


class TestBursty:
    def test_silent_during_off_phase(self):
        process = BurstyArrivals(peak_rate=1.0, on_duration=10.0, off_duration=90.0)
        times = collect_arrivals(process, 300.0)
        for t in times:
            position = t % 100.0
            assert position <= 10.0 + 1.0  # inside (or at edge of) the burst

    def test_mean_rate_accounts_for_duty_cycle(self):
        process = BurstyArrivals(peak_rate=1.0, on_duration=10.0, off_duration=90.0)
        assert process.mean_rate() == pytest.approx(0.1)
        times = collect_arrivals(process, 2000.0)
        assert len(times) / 2000.0 == pytest.approx(0.1, rel=0.2)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            BurstyArrivals(0.0, 1.0, 1.0)


class TestDriftingRate:
    def test_rate_oscillates(self):
        process = DriftingRate(base_rate=1.0, amplitude=0.5, period=100.0)
        assert process.rate_at(25.0) == pytest.approx(1.5)
        assert process.rate_at(75.0) == pytest.approx(0.5)

    def test_invalid_amplitude(self):
        with pytest.raises(SimulationError):
            DriftingRate(base_rate=1.0, amplitude=1.0, period=10.0)


class TestTraceArrivals:
    def test_replays_exact_times(self):
        process = TraceArrivals([5.0, 7.5, 20.0])
        times = collect_arrivals(process, 100.0)
        assert times == [5.0, 7.5, 20.0]

    def test_mean_rate(self):
        assert TraceArrivals([0.0, 10.0, 20.0]).mean_rate() == pytest.approx(0.1)
        assert TraceArrivals([5.0]).mean_rate() == 0.0


class TestValueGenerators:
    def test_uniform_bounds_and_seq(self):
        gen = UniformValues("v", 10, 20)
        rng = np.random.default_rng(0)
        for seq in range(50):
            payload = gen(rng, seq, 0.0)
            assert 10 <= payload["v"] < 20
            assert payload["seq"] == seq

    def test_uniform_empty_range_rejected(self):
        with pytest.raises(SimulationError):
            UniformValues("v", 5, 5)

    def test_normal_distribution_shape(self):
        gen = NormalValues("v", mean=100.0, stddev=5.0)
        rng = np.random.default_rng(1)
        values = [gen(rng, i, 0.0)["v"] for i in range(2000)]
        assert np.mean(values) == pytest.approx(100.0, abs=0.5)
        assert np.std(values) == pytest.approx(5.0, rel=0.1)

    def test_zipf_is_skewed(self):
        gen = ZipfValues("k", n=50, skew=1.5)
        rng = np.random.default_rng(2)
        values = [gen(rng, i, 0.0)["k"] for i in range(5000)]
        assert all(0 <= v < 50 for v in values)
        counts = np.bincount(values, minlength=50)
        assert counts[0] > counts[10] > 0  # heavy head

    def test_sequential(self):
        gen = SequentialValues("x")
        rng = np.random.default_rng(0)
        assert [gen(rng, i, 0.0)["x"] for i in range(3)] == [0, 1, 2]


class TestStreamDriver:
    class FakeSource:
        def __init__(self):
            self.events = []

        def produce(self, payload, timestamp):
            self.events.append((timestamp, payload))

    def test_driver_produces_and_advances(self):
        source = self.FakeSource()
        driver = StreamDriver(source, ConstantRate(0.1), SequentialValues(), seed=0)
        t = driver.first_arrival()
        assert t == 10.0
        t = driver.produce(t)
        assert t == 20.0
        assert source.events == [(10.0, {"x": 0, "seq": 0})]
        assert driver.produced == 1

    def test_start_offset(self):
        driver = StreamDriver(self.FakeSource(), ConstantRate(1.0), start=100.0)
        assert driver.first_arrival() == pytest.approx(101.0)
