"""Tests for the telemetry export pipeline (exporter, sinks, subscriptions).

The contracts under test are the ones `docs/METADATA_GUIDE.md` promises:

* the bounded queue **drops and counts** under overload — it never blocks
  or slows the emitting thread;
* ``flush``/``close`` deliver every event still retained by the ring;
* the TCP sink reconnects with backoff after a dropped connection;
* fan-out delivers identical record sequences to every subscriber.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time

import pytest

from repro.common.clock import VirtualClock
from repro.telemetry.events import WaveRefresh, WaveStart, event_to_dict
from repro.telemetry.hub import Telemetry, render_dashboard
from repro.telemetry.sinks import (
    ExportSink,
    FanOutSink,
    JsonlFileSink,
    TcpLineSink,
)
from repro.telemetry.trace import TraceBus, jsonl_writer


class CollectingSink(ExportSink):
    """Test double: records every batch, optionally failing on demand."""

    name = "collect"

    def __init__(self) -> None:
        self.batches: list[list[dict]] = []
        self.flushes = 0
        self.closes = 0
        self.fail = False

    def write_batch(self, records: list[dict]) -> None:
        if self.fail:
            raise IOError("sink down")
        self.batches.append(records)

    def flush(self) -> None:
        self.flushes += 1

    def close(self) -> None:
        self.closes += 1

    @property
    def records(self) -> list[dict]:
        return [record for batch in self.batches for record in batch]

    def trace_records(self) -> list[dict]:
        return [r for r in self.records if r["kind"] != "metrics.snapshot"]


def drain_events(sink: CollectingSink) -> list[str]:
    return [r["node"] for r in sink.trace_records()]


# ---------------------------------------------------------------------------
# TraceSubscription — the bounded pull cursor
# ---------------------------------------------------------------------------


class TestTraceSubscription:
    def test_pop_batch_returns_events_in_order(self):
        bus = TraceBus(capacity=16)
        sub = bus.subscribe()
        for i in range(5):
            bus.record(WaveStart(node=f"n{i}"))
        batch = sub.pop_batch(3)
        assert [e.node for e in batch] == ["n0", "n1", "n2"]
        assert [e.node for e in sub.pop_batch(10)] == ["n3", "n4"]
        assert sub.pop_batch() == []
        assert sub.delivered == 5

    def test_subscription_starts_at_now_not_history(self):
        bus = TraceBus(capacity=16)
        bus.record(WaveStart(node="old"))
        sub = bus.subscribe()
        bus.record(WaveStart(node="new"))
        assert [e.node for e in sub.pop_batch()] == ["new"]

    def test_overflow_drops_oldest_and_counts_exactly(self):
        bus = TraceBus(capacity=8)
        sub = bus.subscribe()
        for i in range(30):
            bus.record(WaveStart(node=f"n{i}"))
        batch = sub.pop_batch(100)
        # The ring holds the newest 8; everything older was overwritten.
        assert [e.node for e in batch] == [f"n{i}" for i in range(22, 30)]
        assert sub.dropped == 22
        assert sub.delivered + sub.dropped == bus.emitted

    def test_slow_consumer_never_blocks_emitter(self):
        bus = TraceBus(capacity=4)
        bus.subscribe()  # never popped: the worst possible consumer
        started = time.perf_counter()
        for i in range(10_000):
            bus.record(WaveStart(node=f"n{i}"))
        elapsed = time.perf_counter() - started
        # 10k records must complete promptly (no waits anywhere on the
        # emitting path); generous bound for slow CI boxes.
        assert elapsed < 2.0
        assert bus.emitted == 10_000

    def test_pending_and_lag(self):
        bus = TraceBus(capacity=4)
        sub = bus.subscribe()
        for i in range(6):
            bus.record(WaveStart(node=f"n{i}"))
        assert sub.pending() == 4     # retained by the ring
        assert sub.lag() == 6         # includes the 2 already overwritten
        sub.pop_batch(100)
        assert sub.pending() == 0
        assert sub.dropped == 2

    def test_clear_skips_ahead_without_counting_drops(self):
        bus = TraceBus(capacity=8)
        sub = bus.subscribe()
        for _ in range(5):
            bus.record(WaveStart())
        bus.clear()
        assert sub.pop_batch() == []
        assert sub.dropped == 0

    def test_close_detaches(self):
        bus = TraceBus()
        sub = bus.subscribe()
        sub.close()
        bus.record(WaveStart())
        assert sub.pop_batch() == []
        assert bus.subscriptions() == []

    def test_concurrent_producers_exact_accounting(self):
        bus = TraceBus(capacity=64)
        sub = bus.subscribe()
        total = 0
        done = threading.Event()

        def produce(n):
            for _ in range(n):
                bus.record(WaveStart())

        threads = [threading.Thread(target=produce, args=(500,))
                   for _ in range(4)]
        for t in threads:
            t.start()
        drained = 0
        while any(t.is_alive() for t in threads) or sub.pending():
            drained += len(sub.pop_batch(32))
        for t in threads:
            t.join()
        drained += len(sub.pop_batch(10_000))
        assert drained + sub.dropped == 2000
        assert sub.delivered == drained


# ---------------------------------------------------------------------------
# The exporter drainer
# ---------------------------------------------------------------------------


class TestTelemetryExporter:
    def test_flush_on_close_delivers_all_enqueued(self):
        tel = Telemetry(capacity=4096)
        sink = CollectingSink()
        exporter = tel.attach_exporter(sink, flush_interval=5.0,
                                       metrics_interval=None, start=False)
        for i in range(700):
            tel.emit(WaveStart(node=f"n{i}"))
        exporter.close()
        assert drain_events(sink) == [f"n{i}" for i in range(700)]
        assert sink.closes == 1
        # 700 events at batch_size 256 -> 3 batches.
        assert [len(b) for b in sink.batches] == [256, 256, 188]

    def test_overflow_drops_and_counts_never_blocks(self):
        tel = Telemetry(capacity=32)
        sink = CollectingSink()
        exporter = tel.attach_exporter(sink, flush_interval=5.0,
                                       metrics_interval=None, start=False)
        for i in range(1000):
            tel.emit(WaveStart(node=f"n{i}"))
        exporter.close()
        sub = exporter.subscription
        assert len(drain_events(sink)) == sub.delivered
        assert sub.delivered + sub.dropped == 1000
        assert sub.dropped == 1000 - 32
        # Queue drops are mirrored into the metric series.
        counter = tel.metrics.counter(
            "export_queue_dropped_total", {"exporter": exporter.name})
        assert counter.value == sub.dropped

    def test_background_drainer_delivers_without_flush(self):
        tel = Telemetry(capacity=4096)
        sink = CollectingSink()
        exporter = tel.attach_exporter(sink, flush_interval=0.005,
                                       metrics_interval=None)
        for i in range(10):
            tel.emit(WaveStart(node=f"n{i}"))
        deadline = time.monotonic() + 5.0
        while len(sink.records) < 10 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert drain_events(sink) == [f"n{i}" for i in range(10)]
        exporter.close()

    def test_failing_sink_counts_and_other_sinks_unaffected(self, caplog):
        tel = Telemetry(capacity=4096)
        bad, good = CollectingSink(), CollectingSink()
        bad.fail = True
        exporter = tel.attach_exporter(bad, good, flush_interval=5.0,
                                       metrics_interval=None, start=False)
        for i in range(10):
            tel.emit(WaveStart(node=f"n{i}"))
        with caplog.at_level("WARNING", logger="repro.telemetry.export"):
            exporter.flush()
        assert len(drain_events(good)) == 10
        bad_progress, good_progress = exporter.progress
        assert bad_progress.errors == 1
        assert bad_progress.dropped == 10
        assert good_progress.events == 10
        assert tel.metrics.counter(
            "export_sink_errors_total", {"sink": "collect"}).value >= 1
        assert any("sink" in r.message for r in caplog.records)
        # The warning is emitted once, not per batch.
        for i in range(10):
            tel.emit(WaveStart(node=f"m{i}"))
        with caplog.at_level("WARNING", logger="repro.telemetry.export"):
            count_before = len(caplog.records)
            exporter.flush()
        assert len(caplog.records) == count_before
        exporter.close()

    def test_metrics_snapshot_records_travel_in_band(self):
        tel = Telemetry(capacity=4096)
        sink = CollectingSink()
        exporter = tel.attach_exporter(sink, flush_interval=5.0,
                                       metrics_interval=1.0, start=False)
        tel.emit(WaveStart(node="n"))
        exporter.close()  # close writes one final snapshot
        snapshots = [r for r in sink.records if r["kind"] == "metrics.snapshot"]
        assert len(snapshots) == 1
        assert "waves_total" in snapshots[0]["series"]["counters"]
        assert exporter.metrics_snapshots == 1

    def test_progress_format(self):
        tel = Telemetry(capacity=65536)
        sink = CollectingSink()
        exporter = tel.attach_exporter(sink, metrics_interval=None,
                                       start=False)
        for i in range(45_200):
            tel.emit(WaveStart(node="n"))
        exporter.flush()
        # 45_200 events / 256 per batch -> 177 batches.
        line = exporter.progress[0].format()
        assert line == "collect: batch 177, 45.2k events, 0 dropped"
        exporter.close()

    def test_describe_and_dashboard_surface_export_health(self):
        tel = Telemetry(capacity=4096)
        sink = CollectingSink()
        exporter = tel.attach_exporter(sink, metrics_interval=None,
                                       name="ship", start=False)
        tel.emit(WaveStart(node="n"))
        exporter.flush()
        described = tel.describe()
        assert described["exporters"][0]["name"] == "ship"
        assert described["exporters"][0]["sinks"][0]["events"] == 1
        dashboard = render_dashboard(tel)
        assert "exporters" in dashboard
        assert "ship" in dashboard
        exporter.close()

    def test_close_is_idempotent_and_context_manager_closes(self):
        tel = Telemetry(capacity=64)
        sink = CollectingSink()
        with tel.attach_exporter(sink, metrics_interval=None) as exporter:
            tel.emit(WaveStart(node="n"))
        assert sink.closes == 1
        exporter.close()
        assert sink.closes == 1
        assert not exporter.running

    def test_disable_telemetry_closes_exporters(self):
        from repro.common.clock import VirtualClock
        from repro.metadata.registry import MetadataSystem
        from repro.metadata.scheduling import VirtualTimeScheduler

        clock = VirtualClock()
        system = MetadataSystem(clock, VirtualTimeScheduler(clock))
        telemetry = system.enable_telemetry()
        sink = CollectingSink()
        telemetry.attach_exporter(sink, metrics_interval=None)
        system.disable_telemetry()
        assert sink.closes == 1
        assert telemetry.exporters == []

    def test_validation(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            tel.attach_exporter()  # no sinks
        with pytest.raises(ValueError):
            tel.attach_exporter(CollectingSink(), batch_size=0)
        with pytest.raises(ValueError):
            tel.attach_exporter(CollectingSink(), cpu_budget=1.5)
        with pytest.raises(ValueError):
            tel.attach_exporter(CollectingSink(), flush_interval=0.0)

    def test_cpu_budget_paces_but_still_delivers(self):
        tel = Telemetry(capacity=8192)
        sink = CollectingSink()
        exporter = tel.attach_exporter(sink, flush_interval=0.005,
                                       metrics_interval=None, cpu_budget=0.5)
        for i in range(100):
            tel.emit(WaveStart(node=f"n{i}"))
        deadline = time.monotonic() + 5.0
        while len(sink.records) < 100 and time.monotonic() < deadline:
            time.sleep(0.005)
        exporter.close()
        assert len(drain_events(sink)) == 100


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class TestJsonlFileSink:
    def test_writes_jsonl_and_rotates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlFileSink(path, max_bytes=500, max_files=3)
        record = event_to_dict(WaveRefresh(node="n", key="k"))
        for _ in range(4):
            sink.write_batch([record] * 5)
        sink.close()
        rotated = sorted(p.name for p in tmp_path.iterdir())
        assert "trace.jsonl.1" in rotated
        assert sink.rotations >= 1
        # Every kept line is valid JSON.
        for file in tmp_path.iterdir():
            for line in file.read_text().splitlines():
                assert json.loads(line)["kind"] == "wave.refresh"

    def test_rotation_keeps_at_most_max_files(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlFileSink(path, max_bytes=50, max_files=2)
        for i in range(20):
            sink.write_batch([{"kind": "x", "i": i}])
        sink.close()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["t.jsonl.1", "t.jsonl.2"] or \
            names == ["t.jsonl", "t.jsonl.1", "t.jsonl.2"]

    def test_no_rotation_when_disabled(self, tmp_path):
        sink = JsonlFileSink(tmp_path / "t.jsonl", max_bytes=None)
        sink.write_batch([{"kind": "x"}] * 100)
        sink.close()
        assert [p.name for p in tmp_path.iterdir()] == ["t.jsonl"]


class _LineReceiver(socketserver.ThreadingTCPServer):
    """Loopback server collecting received lines; can be torn down."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, port: int = 0):
        self.lines: list[bytes] = []
        self.lines_lock = threading.Lock()
        self.connections: list[socket.socket] = []
        server = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                with server.lines_lock:
                    server.connections.append(self.connection)
                for line in self.rfile:
                    with server.lines_lock:
                        server.lines.append(line.rstrip(b"\n"))

        super().__init__(("127.0.0.1", port), Handler)
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def line_count(self) -> int:
        with self.lines_lock:
            return len(self.lines)

    def stop(self):
        self.shutdown()
        self.server_close()
        # Tear down established connections too, so clients see the drop
        # (the handler threads would otherwise hold them open).
        with self.lines_lock:
            connections = list(self.connections)
            self.connections.clear()
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            connection.close()


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestTcpLineSink:
    def test_sends_line_protocol(self):
        server = _LineReceiver()
        try:
            sink = TcpLineSink("127.0.0.1", server.port)
            sink.write_batch([{"kind": "a", "n": 1}, {"kind": "b", "n": 2}])
            sink.close()
            assert _wait_for(lambda: server.line_count() == 2)
            assert json.loads(server.lines[0]) == {"kind": "a", "n": 1}
        finally:
            server.stop()

    def test_dropped_connection_arms_backoff(self):
        server = _LineReceiver()
        port = server.port
        sink = TcpLineSink("127.0.0.1", port, connect_timeout=1.0,
                           backoff=60.0, max_backoff=60.0)
        try:
            sink.write_batch([{"kind": "first"}])
            assert _wait_for(lambda: server.line_count() == 1)
            assert sink.connects == 1
        finally:
            server.stop()

        # The peer is gone: writes fail (the first sends may land in the
        # dead socket's buffer before the RST surfaces), disconnecting the
        # sink and arming the backoff window.
        with pytest.raises(OSError):
            for _ in range(100):
                sink.write_batch([{"kind": "lost"}])
                time.sleep(0.001)
        assert not sink.connected
        assert sink.failures >= 1

        # Inside the 60s window: fail fast, no blocking connect attempt.
        started = time.perf_counter()
        with pytest.raises(ConnectionError, match="backing off"):
            sink.write_batch([{"kind": "too-soon"}])
        assert time.perf_counter() - started < 0.5

    def test_reconnect_resumes_delivery(self):
        # connect -> server down -> errors + backoff -> server back on the
        # SAME port -> the sink reconnects once the window elapses.
        server = _LineReceiver()
        port = server.port
        sink = TcpLineSink("127.0.0.1", port, connect_timeout=1.0,
                           backoff=0.02, max_backoff=0.1)
        sink.write_batch([{"kind": "one"}])
        assert _wait_for(lambda: server.line_count() == 1)
        server.stop()

        with pytest.raises(OSError):
            for _ in range(100):
                sink.write_batch([{"kind": "lost"}])
                time.sleep(0.001)

        server2 = _LineReceiver(port)
        try:
            deadline = time.monotonic() + 5.0
            delivered = False
            while time.monotonic() < deadline:
                try:
                    sink.write_batch([{"kind": "after-reconnect"}])
                    delivered = True
                    break
                except OSError:
                    time.sleep(0.02)
            assert delivered
            assert sink.connects == 2
            sink.close()
            assert _wait_for(
                lambda: any(b"after-reconnect" in line
                            for line in server2.lines))
        finally:
            server2.stop()

    def test_connect_failure_arms_backoff(self):
        # Nothing listens on this port (bind-then-close reserves a dead one).
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sink = TcpLineSink("127.0.0.1", port, connect_timeout=0.2,
                           backoff=10.0, max_backoff=10.0)
        with pytest.raises(OSError):
            sink.write_batch([{"kind": "x"}])
        assert sink.failures == 1
        with pytest.raises(ConnectionError, match="backing off"):
            sink.write_batch([{"kind": "y"}])
        assert sink.failures == 1  # fail-fast does not re-count


class TestFanOutSink:
    def test_identical_sequences_to_all_subscribers(self):
        tel = Telemetry(capacity=4096)
        fan = FanOutSink()
        subscribers = [fan.subscribe() for _ in range(5)]
        exporter = tel.attach_exporter(fan, metrics_interval=None, start=False)
        for i in range(300):
            tel.emit(WaveStart(node=f"n{i}"))
        exporter.close()
        sequences = [
            [r["node"] for r in s.pop() if r["kind"] != "metrics.snapshot"]
            for s in subscribers
        ]
        assert sequences[0] == [f"n{i}" for i in range(300)]
        assert all(seq == sequences[0] for seq in sequences)

    def test_slow_subscriber_drops_counted_others_unaffected(self):
        fan = FanOutSink(capacity=8)
        slow = fan.subscribe()
        fast = fan.subscribe(capacity=1000)
        for i in range(100):
            fan.write_batch([{"kind": "x", "i": i}])
        assert slow.dropped == 92
        assert [r["i"] for r in slow.pop()] == list(range(92, 100))
        assert fast.dropped == 0
        assert len(fast.pop()) == 100

    def test_wait_and_pop(self):
        fan = FanOutSink()
        sub = fan.subscribe()
        assert not sub.wait(timeout=0.01)
        fan.write_batch([{"kind": "x"}])
        assert sub.wait(timeout=1.0)
        assert sub.pop(1) == [{"kind": "x"}]
        assert not sub.wait(timeout=0.01)

    def test_unsubscribe_stops_delivery(self):
        fan = FanOutSink()
        sub = fan.subscribe()
        sub.close()
        fan.write_batch([{"kind": "x"}])
        assert sub.pop() == []
        assert fan.subscriber_count() == 0


# ---------------------------------------------------------------------------
# Satellites: jsonl_writer hardening + ring drop counter
# ---------------------------------------------------------------------------


class _BrokenStream:
    def write(self, text: str) -> int:
        raise IOError("stream closed")


class TestJsonlWriterHardening:
    def test_broken_stream_never_disrupts_emitters(self, caplog):
        bus = TraceBus()
        writer = jsonl_writer(_BrokenStream())
        bus.listen(writer)
        with caplog.at_level("WARNING", logger="repro.telemetry.trace"):
            for _ in range(5):
                bus.record(WaveStart(node="n"))  # must not raise
        assert bus.emitted == 5
        assert writer.errors == 5
        # Logged once, not once per event.
        warnings = [r for r in caplog.records if "jsonl_writer" in r.message]
        assert len(warnings) == 1

    def test_on_error_callback_feeds_counters(self):
        errors: list[BaseException] = []
        writer = jsonl_writer(_BrokenStream(), on_error=errors.append)
        writer(WaveStart(node="n"))
        assert len(errors) == 1
        assert isinstance(errors[0], IOError)

    def test_working_stream_unchanged(self):
        import io
        stream = io.StringIO()
        writer = jsonl_writer(stream)
        bus = TraceBus(VirtualClock())
        bus.listen(writer)
        bus.record(WaveStart(node="n", key="k"))
        line = json.loads(stream.getvalue())
        assert line["kind"] == "wave.start"
        assert writer.errors == 0


class TestRingDropCounter:
    def test_ring_overwrite_increments_counter_exactly(self):
        tel = Telemetry(capacity=4)
        for _ in range(10):
            tel.emit(WaveStart(node="n"))
        counter = tel.metrics.counter("trace_events_dropped_total")
        assert counter.value == 6
        assert tel.bus.dropped == 6

    def test_dashboard_surfaces_overflow(self):
        tel = Telemetry(capacity=4)
        for _ in range(10):
            tel.emit(WaveStart(node="n"))
        dashboard = render_dashboard(tel)
        assert "trace_events_dropped_total" in dashboard
        assert "ring overflow" in dashboard

    def test_no_counter_noise_without_drops(self):
        tel = Telemetry(capacity=64)
        tel.emit(WaveStart(node="n"))
        snapshot = tel.metrics.snapshot()
        assert "trace_events_dropped_total" not in snapshot["counters"]
