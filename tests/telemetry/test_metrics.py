"""Tests for the metrics registry and its wire-format exporters."""

from __future__ import annotations

import json
import math

import pytest

from repro.common.histogram import FixedBoundHistogram
from repro.telemetry.metrics import SIZE_BOUNDS, MetricsRegistry


class TestInstruments:
    def test_counter_get_or_create_by_name_and_labels(self):
        m = MetricsRegistry()
        a = m.counter("hits", {"node": "join"})
        b = m.counter("hits", {"node": "join"})
        c = m.counter("hits", {"node": "src"})
        assert a is b
        assert a is not c
        a.inc()
        a.inc(2)
        assert a.value == 3
        assert c.value == 0

    def test_label_order_does_not_matter(self):
        m = MetricsRegistry()
        a = m.counter("hits", {"a": "1", "b": "2"})
        b = m.counter("hits", {"b": "2", "a": "1"})
        assert a is b

    def test_counter_rejects_decrease(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.counter("hits").inc(-1)

    def test_gauge_moves_both_ways(self):
        m = MetricsRegistry()
        g = m.gauge("live")
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1.0
        g.set(7.5)
        assert g.value == 7.5

    def test_histogram_observes_into_bounds(self):
        m = MetricsRegistry()
        h = m.histogram("sizes", bounds=SIZE_BOUNDS)
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 106
        assert h.mean() == pytest.approx(26.5)


class TestSnapshot:
    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.counter("waves_total").inc()
        m.gauge("handlers_live").set(3)
        m.histogram("wave_size", bounds=SIZE_BOUNDS).observe(2)
        snap = m.snapshot()
        assert snap["counters"] == {"waves_total": 1}
        assert snap["gauges"] == {"handlers_live": 3.0}
        assert snap["histograms"]["wave_size"]["count"] == 1


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        m = MetricsRegistry(prefix="repro")
        m.counter("waves_total").inc(4)
        m.gauge("handlers_live", {"node": "join"}).set(2)
        text = m.to_prometheus()
        assert "# TYPE repro_waves_total counter" in text
        assert "repro_waves_total 4" in text
        assert 'repro_handlers_live{node="join"} 2' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        m = MetricsRegistry(prefix="repro")
        h = m.histogram("wave_size", bounds=(1, 5))
        for v in (1, 2, 9):
            h.observe(v)
        text = m.to_prometheus()
        assert 'repro_wave_size_bucket{le="1"} 1' in text
        assert 'repro_wave_size_bucket{le="5"} 2' in text
        assert 'repro_wave_size_bucket{le="+Inf"} 3' in text
        assert "repro_wave_size_sum 12" in text
        assert "repro_wave_size_count 3" in text

    def test_le_merges_into_existing_labels(self):
        m = MetricsRegistry(prefix="repro")
        m.histogram("d", {"node": "a"}, bounds=(1,)).observe(0.5)
        text = m.to_prometheus()
        assert 'repro_d_bucket{node="a",le="1"} 1' in text

    def test_type_line_emitted_once_per_family(self):
        m = MetricsRegistry(prefix="repro")
        m.counter("hits", {"node": "a"}).inc()
        m.counter("hits", {"node": "b"}).inc()
        text = m.to_prometheus()
        assert text.count("# TYPE repro_hits counter") == 1

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().to_prometheus() == ""
        assert MetricsRegistry().to_jsonlines() == ""


class TestJsonLinesExport:
    def test_one_valid_json_object_per_series(self):
        m = MetricsRegistry(prefix="repro")
        m.counter("waves_total").inc(2)
        m.histogram("wave_size", bounds=(1, 5)).observe(3)
        records = [json.loads(line) for line in m.to_jsonlines().splitlines()]
        by_name = {rec["name"]: rec for rec in records}
        assert by_name["repro_waves_total"]["value"] == 2
        hist = by_name["repro_wave_size"]
        assert hist["type"] == "histogram"
        assert hist["buckets"]["+Inf"] == 1
        assert hist["buckets"]["1"] == 0


class TestFixedBoundHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            FixedBoundHistogram((1, 1))
        with pytest.raises(ValueError):
            FixedBoundHistogram(())

    def test_le_semantics_are_inclusive(self):
        hist = FixedBoundHistogram((1.0, 2.0))
        hist.observe(1.0)  # falls in the le=1 bucket, not le=2
        assert hist.cumulative()[0] == (1.0, 1)

    def test_cumulative_counts(self):
        hist = FixedBoundHistogram((1.0, 5.0, 10.0))
        for v in (0.5, 3, 7, 100):
            hist.observe(v)
        assert hist.cumulative() == [
            (1.0, 1), (5.0, 2), (10.0, 3), (math.inf, 4),
        ]

    def test_quantile_and_mean(self):
        hist = FixedBoundHistogram((1.0, 10.0, 100.0))
        for v in (0.5, 0.6, 5.0, 50.0):
            hist.observe(v)
        assert hist.quantile(0.5) == 1.0  # median falls in the first bucket
        assert hist.quantile(1.0) == 100.0
        assert hist.mean() == pytest.approx(14.025)

    def test_reset(self):
        hist = FixedBoundHistogram((1.0,))
        hist.observe(0.5)
        hist.reset()
        assert hist.count == 0
        assert hist.sum == 0.0
