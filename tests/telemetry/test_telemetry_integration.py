"""End-to-end telemetry tests on a multi-node metadata graph.

The acceptance scenario of the telemetry layer: on a three-node dependency
chain, the trace bus must reproduce the full causal story — subscribe with
its transitive includes, the propagation wave with per-edge hops and
refreshes — under one consistent span id per cascade, with the exporters
agreeing with the trace.  And with telemetry disabled, the runtime must be
byte-for-byte the same: zero trace events, unchanged ``stats()``.
"""

from __future__ import annotations

import json

import pytest

from repro.metadata import introspect
from repro.metadata.item import (
    Mechanism,
    MetadataDefinition,
    MetadataKey,
    NodeDep,
)
from repro.telemetry.hub import explain_refresh, format_span, render_dashboard

SRC = MetadataKey("src")
MID = MetadataKey("mid")
TOP = MetadataKey("top")


def build_chain(make_owner, values=(1, 2, 3), period=10.0):
    """a --(SRC periodic)--> b --(MID triggered)--> c --(TOP triggered)."""
    a, b, c = make_owner("a"), make_owner("b"), make_owner("c")
    iterator = iter(values)
    a.metadata.define(MetadataDefinition(
        SRC, Mechanism.PERIODIC, period=period,
        compute=lambda ctx: next(iterator),
    ))
    b.metadata.define(MetadataDefinition(
        MID, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(SRC) * 10,
        dependencies=[NodeDep(a, SRC)],
    ))
    c.metadata.define(MetadataDefinition(
        TOP, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(MID) + 1,
        dependencies=[NodeDep(b, MID)],
    ))
    return a, b, c


class TestCausalChain:
    def test_subscribe_cascade_shares_one_span(self, make_owner, system):
        a, b, c = build_chain(make_owner)
        tel = system.enable_telemetry()
        sub = c.metadata.subscribe(TOP)

        subscribes = tel.bus.events(kind="subscribe")
        assert len(subscribes) == 1
        span = subscribes[0].span
        assert span != 0

        includes = tel.bus.events(kind="include")
        assert [(e.node, e.key, e.shared) for e in includes] == [
            ("a", "src", False),   # deepest dependency includes first
            ("b", "mid", False),
            ("c", "top", False),
        ]
        # The whole transitive traversal carries the subscribe's span.
        assert all(e.span == span for e in includes)
        created = tel.bus.events(kind="handler.created")
        assert {(e.node, e.mechanism) for e in created} == {
            ("a", "periodic"), ("b", "triggered"), ("c", "triggered"),
        }
        sub.cancel()

    def test_wave_reproduces_full_causal_chain(self, make_owner, system, clock):
        a, b, c = build_chain(make_owner)
        tel = system.enable_telemetry()
        sub = c.metadata.subscribe(TOP)
        assert sub.get() == 11

        clock.advance_by(10.0)  # SRC: 1 -> 2, triggering the cascade
        assert sub.get() == 21

        waves = tel.bus.events(kind="wave.start")
        assert len(waves) == 1
        span = waves[0].span
        wave = tel.bus.span_events(span)

        # One consistent span from the triggering change through every hop.
        kinds = [e.kind for e in wave]
        assert kinds == [
            "wave.enqueued", "wave.drain", "wave.start",
            "wave.hop", "wave.refresh",
            "wave.hop", "wave.refresh",
            "wave.end",
        ]
        enq = wave[0]
        assert (enq.node, enq.key) == ("a", "src")
        hops = [e for e in wave if e.kind == "wave.hop"]
        assert [(h.from_node, h.from_key, h.to_node, h.to_key) for h in hops] == [
            ("a", "src", "b", "mid"),
            ("b", "mid", "c", "top"),
        ]
        refreshes = [e for e in wave if e.kind == "wave.refresh"]
        assert [(r.node, r.key, r.changed) for r in refreshes] == [
            ("b", "mid", True),
            ("c", "top", True),
        ]
        end = wave[-1]
        assert (end.refreshed, end.suppressed, end.errors) == (2, 0, 0)
        sub.cancel()

    def test_metrics_agree_with_trace_and_stats(self, make_owner, system, clock):
        a, b, c = build_chain(make_owner, values=(1, 2, 3))
        tel = system.enable_telemetry()
        sub = c.metadata.subscribe(TOP)
        clock.advance_by(10.0)
        clock.advance_by(10.0)

        waves = len(tel.bus.events(kind="wave.start"))
        hops = len(tel.bus.events(kind="wave.hop"))
        refreshes = len(tel.bus.events(kind="wave.refresh"))
        assert waves == 2
        assert refreshes == 4  # 2 waves x (mid, top)

        snap = tel.metrics.snapshot()
        assert snap["counters"]["waves_total"] == waves
        assert snap["counters"]["wave_hops_total"] == hops
        assert (snap["counters"]['wave_refreshes_total{node="b"}']
                + snap["counters"]['wave_refreshes_total{node="c"}']) == refreshes

        # Prometheus text and JSON-lines report the same numbers.
        prom = tel.metrics.to_prometheus()
        assert f"repro_waves_total {waves}" in prom
        assert f"repro_wave_hops_total {hops}" in prom
        records = {
            rec["name"]: rec
            for rec in map(json.loads, tel.metrics.to_jsonlines().splitlines())
        }
        assert records["repro_waves_total"]["value"] == waves
        assert records["repro_wave_hops_total"]["value"] == hops

        # And both agree with the engine's own accounting.
        stats = system.stats()
        assert stats["waves"] == waves
        assert stats["refreshes"] == refreshes
        sub.cancel()

    def test_explain_refresh_renders_cascade(self, make_owner, system, clock):
        a, b, c = build_chain(make_owner)
        tel = system.enable_telemetry()
        sub = c.metadata.subscribe(TOP)
        clock.advance_by(10.0)
        report = explain_refresh(tel, c, TOP)
        assert "why did c/top refresh?" in report
        assert "a/src -> b/mid" in report
        assert "b/mid -> c/top" in report
        assert "refresh c/top [changed]" in report
        sub.cancel()

    def test_explain_refresh_without_refresh(self, make_owner, system):
        build_chain(make_owner)
        tel = system.enable_telemetry()
        assert explain_refresh(tel, "c", TOP).startswith(
            "no buffered wave refresh of c/top"
        )

    def test_unsubscribe_cascade_shares_one_span(self, make_owner, system):
        a, b, c = build_chain(make_owner)
        tel = system.enable_telemetry()
        sub = c.metadata.subscribe(TOP)
        sub.cancel()
        unsubs = tel.bus.events(kind="unsubscribe")
        assert len(unsubs) == 1
        excludes = tel.bus.events(kind="exclude")
        assert [(e.node, e.key, e.removed) for e in excludes] == [
            ("c", "top", True), ("b", "mid", True), ("a", "src", True),
        ]
        assert all(e.span == unsubs[0].span for e in excludes)
        retired = tel.bus.events(kind="handler.retired")
        assert len(retired) == 3


class TestSuppressionAndSharing:
    def test_unchanged_value_traced_as_suppression(self, make_owner, system, clock):
        # MID clamps SRC to a constant, so TOP's inputs never change.
        a, b, c = make_owner("a"), make_owner("b"), make_owner("c")
        iterator = iter((1, 2))
        a.metadata.define(MetadataDefinition(
            SRC, Mechanism.PERIODIC, period=10.0,
            compute=lambda ctx: next(iterator),
        ))
        b.metadata.define(MetadataDefinition(
            MID, Mechanism.TRIGGERED, compute=lambda ctx: 5,
            dependencies=[NodeDep(a, SRC)],
        ))
        c.metadata.define(MetadataDefinition(
            TOP, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(MID),
            dependencies=[NodeDep(b, MID)],
        ))
        tel = system.enable_telemetry()
        sub = c.metadata.subscribe(TOP)
        clock.advance_by(10.0)
        suppressed = tel.bus.events(kind="wave.suppressed")
        assert [(e.node, e.key, e.reason) for e in suppressed] == [
            ("c", "top", "unchanged-inputs"),
        ]
        assert tel.metrics.counter(
            "wave_suppressed_total", {"reason": "unchanged-inputs"}
        ).value == 1
        sub.cancel()

    def test_shared_include_marked(self, make_owner, system):
        a, b, c = build_chain(make_owner)
        tel = system.enable_telemetry()
        s1 = c.metadata.subscribe(TOP)
        s2 = b.metadata.subscribe(MID)  # MID is already included via TOP
        shared = [e for e in tel.bus.events(kind="include") if e.shared]
        assert [(e.node, e.key) for e in shared] == [("b", "mid")]
        s2.cancel()
        still_shared = [e for e in tel.bus.events(kind="exclude")
                        if not e.removed]
        assert [(e.node, e.key) for e in still_shared] == [("b", "mid")]
        s1.cancel()


class TestDisabledTelemetry:
    def test_disabled_runtime_is_untouched(self, make_owner, system, clock):
        a, b, c = build_chain(make_owner)
        sub = c.metadata.subscribe(TOP)
        clock.advance_by(10.0)
        assert sub.get() == 21
        sub.cancel()
        assert system.telemetry is None
        stats = system.stats()
        assert stats["waves"] == 1
        assert stats["refreshes"] == 2
        assert stats["handlers_created"] == 3
        assert stats["handlers_removed"] == 3

    def test_disabled_matches_enabled_stats(self, make_owner, clock, system):
        """The traced and untraced wave paths keep identical accounting."""

        def run(system_, make_owner_, clock_, enable):
            a, b, c = build_chain(make_owner_)
            if enable:
                system_.enable_telemetry()
            sub = c.metadata.subscribe(TOP)
            clock_.advance_by(10.0)
            clock_.advance_by(10.0)
            sub.cancel()
            return system_.stats()

        from repro.common.clock import VirtualClock
        from repro.metadata.registry import MetadataRegistry, MetadataSystem
        from repro.metadata.scheduling import VirtualTimeScheduler
        from tests.conftest import RegistryOwner

        results = []
        for enable in (False, True):
            clk = VirtualClock()
            sys_ = MetadataSystem(clk, VirtualTimeScheduler(clk))

            def owner_factory(name, sys_=sys_):
                owner = RegistryOwner(name)
                owner.metadata = MetadataRegistry(owner, sys_)
                return owner

            results.append(run(sys_, owner_factory, clk, enable))
        assert results[0] == results[1]

    def test_zero_events_after_disable(self, make_owner, system, clock):
        a, b, c = build_chain(make_owner)
        tel = system.enable_telemetry()
        detached = system.disable_telemetry()
        assert detached is tel
        sub = c.metadata.subscribe(TOP)
        clock.advance_by(10.0)
        sub.cancel()
        assert tel.bus.emitted == 0
        assert len(tel.bus) == 0

    def test_enable_is_idempotent(self, system):
        tel = system.enable_telemetry()
        assert system.enable_telemetry() is tel
        assert system.propagation.telemetry is tel
        assert system.scheduler.telemetry is tel


class TestIntrospectionAndDashboard:
    def test_describe_system_telemetry_section(self, make_owner, system):
        a, b, c = build_chain(make_owner)
        desc = introspect.describe_system(system)
        assert desc["telemetry"] == {"enabled": False}
        tel = system.enable_telemetry()
        sub = c.metadata.subscribe(TOP)
        desc = introspect.describe_system(system)
        section = desc["telemetry"]
        assert section["enabled"] is True
        assert section["events_captured"] == tel.bus.emitted > 0
        assert section["buffer_capacity"] == 4096
        assert "counters" in section["metrics"]
        sub.cancel()

    def test_dashboard_renders_series(self, make_owner, system, clock):
        a, b, c = build_chain(make_owner)
        tel = system.enable_telemetry()
        sub = c.metadata.subscribe(TOP)
        clock.advance_by(10.0)
        text = render_dashboard(tel)
        assert "telemetry dashboard" in text
        assert "waves_total" in text
        assert "handlers_live" in text
        assert "0 dropped" in text
        sub.cancel()

    def test_dashboard_lock_section(self, make_owner, system, clock):
        from repro.metadata.locks import FineGrainedLockPolicy

        tel = system.enable_telemetry()
        policy = FineGrainedLockPolicy()
        node = policy.node_lock(type("O", (), {"name": "op1"})())
        with node.write():
            pass
        text = render_dashboard(tel, lock_policy=policy)
        assert "locks" in text
        assert "node:op1" in text
        assert "contended (read/write)" in text
        # Without a policy (every existing call site) the section is absent.
        assert "locks" not in render_dashboard(tel)
        # An all-idle policy renders nothing either.
        assert "locks" not in render_dashboard(
            tel, lock_policy=FineGrainedLockPolicy())

    def test_format_span_unknown_span(self, system):
        tel = system.enable_telemetry()
        assert format_span(tel, 999) == "span 999: no buffered events"

    def test_scheduler_refresh_traced(self, make_owner, system, clock):
        a, b, c = build_chain(make_owner, values=(1, 2, 3))
        tel = system.enable_telemetry()
        sub = c.metadata.subscribe(TOP)
        clock.advance_by(10.0)
        ticks = tel.bus.events(kind="sched.refresh")
        assert [(e.node, e.key) for e in ticks] == [("a", "src")]
        assert ticks[0].queue_latency == 0.0
        sub.cancel()
        cancels = tel.bus.events(kind="sched.cancel")
        assert [(e.node, e.key, e.in_flight) for e in cancels] == [
            ("a", "src", False),
        ]
