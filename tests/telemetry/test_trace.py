"""Tests for the ring-buffered trace bus."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.common.clock import VirtualClock
from repro.common.racecheck import RaceCheck
from repro.telemetry.events import (
    SubscribeEvent,
    WaveHop,
    WaveRefresh,
    WaveStart,
    event_to_dict,
    key_of,
)
from repro.telemetry.trace import TraceBus, jsonl_writer


class TestRecording:
    def test_record_stamps_timestamps_and_thread(self):
        clock = VirtualClock()
        clock.advance_to(42.0)
        bus = TraceBus(clock)
        event = bus.record(WaveStart(node="n", key="k"))
        assert event.ts == 42.0
        assert event.mono > 0.0
        assert event.thread == threading.get_ident()

    def test_record_without_clock_uses_monotonic(self):
        bus = TraceBus()
        event = bus.record(WaveStart())
        assert event.ts == event.mono

    def test_emitted_counts_all_records(self):
        bus = TraceBus(capacity=2)
        for _ in range(5):
            bus.record(WaveStart())
        assert bus.emitted == 5
        assert len(bus) == 2

    def test_ring_drops_oldest_and_counts(self):
        bus = TraceBus(capacity=3)
        for i in range(5):
            bus.record(WaveStart(node=f"n{i}"))
        assert bus.dropped == 2
        assert [e.node for e in bus.events()] == ["n2", "n3", "n4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBus(capacity=0)

    def test_clear_keeps_counters(self):
        bus = TraceBus()
        bus.record(WaveStart())
        bus.clear()
        assert len(bus) == 0
        assert bus.emitted == 1


class TestSpans:
    def test_spans_are_unique_and_never_zero(self):
        bus = TraceBus()
        spans = [bus.new_span() for _ in range(100)]
        assert 0 not in spans
        assert len(set(spans)) == 100

    def test_span_events_filters(self):
        bus = TraceBus()
        s1, s2 = bus.new_span(), bus.new_span()
        bus.record(WaveStart(span=s1))
        bus.record(WaveHop(span=s2))
        bus.record(WaveRefresh(span=s1))
        assert [e.kind for e in bus.span_events(s1)] == ["wave.start", "wave.refresh"]

    def test_span_allocation_is_race_free(self):
        bus = TraceBus()
        seen: list[int] = []
        lock = threading.Lock()

        def allocate(worker, i):
            span = bus.new_span()
            with lock:
                seen.append(span)

        check = RaceCheck(iterations=500)
        check.add(allocate, threads=4)
        check.run()
        assert len(seen) == len(set(seen)) == 2000


class TestQuery:
    def test_kind_exact_and_prefix_match(self):
        bus = TraceBus()
        bus.record(WaveStart())
        bus.record(WaveHop())
        bus.record(SubscribeEvent())
        assert len(bus.events(kind="wave.hop")) == 1
        assert len(bus.events(kind="wave")) == 2
        assert len(bus.events(kind="subscribe")) == 1
        # A prefix is a dotted namespace, not a substring.
        assert bus.events(kind="wav") == []


class TestListeners:
    def test_listener_receives_events_until_detached(self):
        bus = TraceBus()
        received: list[str] = []
        detach = bus.listen(lambda e: received.append(e.kind))
        bus.record(WaveStart())
        detach()
        bus.record(WaveHop())
        assert received == ["wave.start"]

    def test_jsonl_writer_streams_valid_json(self):
        clock = VirtualClock()
        bus = TraceBus(clock)
        sink = io.StringIO()
        bus.listen(jsonl_writer(sink))
        bus.record(WaveStart(span=3, node="a", key="x", wave_size=2))
        bus.record(WaveRefresh(span=3, node="b", key="y", changed=True))
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [rec["kind"] for rec in lines] == ["wave.start", "wave.refresh"]
        assert lines[0]["span"] == lines[1]["span"] == 3
        assert lines[1]["changed"] is True


class TestEventHelpers:
    def test_event_to_dict_includes_kind(self):
        data = event_to_dict(WaveStart(span=1, node="n", key="k", wave_size=4))
        assert data["kind"] == "wave.start"
        assert data["wave_size"] == 4

    def test_key_of_formats_qualifier(self):
        from repro.metadata.item import MetadataKey

        assert key_of(MetadataKey("rate")) == "rate"
        assert key_of(MetadataKey("rate", ("out", 1))) == "rate[out,1]"
        assert key_of("already-a-string") == "already-a-string"
