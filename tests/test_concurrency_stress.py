"""Concurrency stress tests for the metadata runtime.

Section 3.2.3 requires triggered updates to be "performed in the right
order" and "synchronized"; Section 4.3 runs periodic refreshes on a pool of
worker threads.  These tests drive the runtime from many real threads and
assert the hard invariants:

* **no lost waves** — every ``notify_changed`` / propagating refresh results
  in exactly one wave (the pre-fix ``PropagationEngine`` dropped waves when
  two threads raced on its unguarded ``_propagating`` flag);
* **balanced accounting** — ``handlers_created - handlers_removed`` equals
  the number of live handlers, probes return to zero activations, and the
  scheduler ends with zero active tasks;
* **no deadlock** — everything completes within the harness timeout.

All tests are also marked ``stress`` so CI can re-run them in a loop.
"""

from __future__ import annotations

import threading

import pytest

from repro.common.clock import SystemClock, VirtualClock
from repro.common.racecheck import RaceCheck
from repro.metadata.item import (
    Mechanism,
    MetadataDefinition,
    MetadataKey,
    NodeDep,
    SelfDep,
)
from repro.metadata.locks import FineGrainedLockPolicy
from repro.metadata.registry import MetadataRegistry, MetadataSystem
from repro.metadata.scheduling import ThreadedScheduler, VirtualTimeScheduler
from repro.metadata.sharding import system_from_env

pytestmark = pytest.mark.stress

SRC = MetadataKey("src")
MID = MetadataKey("mid")
TOP = MetadataKey("top")
CHURN = MetadataKey("churn")
FAST = MetadataKey("fast")
REMOTE = MetadataKey("remote")

THREADS = 4
ITERATIONS = 250  # >= 200 per the acceptance criteria


class _Owner:
    def __init__(self, name: str) -> None:
        self.name = name
        self.metadata = None

    def __repr__(self) -> str:
        return f"_Owner({self.name!r})"


def _attach_registry(system: MetadataSystem, name: str) -> _Owner:
    owner = _Owner(name)
    owner.metadata = MetadataRegistry(owner, system)
    return owner


class TestNoLostWaves:
    """The tentpole regression: concurrent event storms must not drop waves.

    Pre-fix, ``PropagationEngine._start`` checked an unguarded
    ``_propagating`` flag: worker B could append to ``_pending`` after
    worker A had drained the list but before A cleared the flag, silently
    discarding B's wave.  (On current CPython the GIL happens to make the
    check-append and drain-clear windows switch-point free, so the loss is
    latent there — but it is real on free-threaded builds and under any
    bytecode/interpreter change.)  This test pins the exact-accounting
    contract the fixed engine provides — one wave per event, nothing queued
    after quiescence — which the pre-fix engine cannot even express: it
    fails this test deterministically.
    """

    def test_concurrent_notify_changed_accounts_every_wave(self):
        clock = VirtualClock()
        system = system_from_env(
            clock,
            VirtualTimeScheduler(clock),
            lock_policy=FineGrainedLockPolicy(),
        )
        owner = _attach_registry(system, "node")
        state = {"n": 0}
        state_lock = threading.Lock()

        def bump(ctx):
            with state_lock:
                state["n"] += 1
                return state["n"]

        owner.metadata.define(MetadataDefinition(SRC, Mechanism.ON_DEMAND, compute=bump))
        owner.metadata.define(MetadataDefinition(
            MID, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(SRC),
            dependencies=[SelfDep(SRC)],
        ))
        owner.metadata.define(MetadataDefinition(
            TOP, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(MID),
            dependencies=[SelfDep(MID)],
        ))
        anchor = owner.metadata.subscribe(TOP)

        check = RaceCheck(iterations=ITERATIONS, timeout=60.0, name="lost-waves")
        check.add(
            lambda worker, i: owner.metadata.notify_changed(SRC),
            threads=THREADS, name="notify",
        )
        check.run()

        stats = system.propagation.stats()
        # Every fired event became exactly one wave: nothing lost, nothing
        # still queued, no wave ran twice.
        assert stats["waves"] == THREADS * ITERATIONS
        assert stats["pending"] == 0
        assert stats["errors"] == 0
        anchor.cancel()
        assert system.included_handler_count == 0


class TestMixedWorkloadStress:
    """Subscribe/unsubscribe churn + event storms + a threaded worker pool."""

    def test_pool_of_four_with_churn_and_events(self):
        clock = SystemClock()
        scheduler = ThreadedScheduler(clock, pool_size=4)
        system = system_from_env(
            clock, scheduler, lock_policy=FineGrainedLockPolicy()
        )
        node_a = _attach_registry(system, "a")
        node_b = _attach_registry(system, "b")

        state = {"n": 0}
        state_lock = threading.Lock()

        def bump(ctx):
            with state_lock:
                state["n"] += 1
                return state["n"]

        node_a.metadata.define(MetadataDefinition(SRC, Mechanism.ON_DEMAND, compute=bump))
        node_a.metadata.define(MetadataDefinition(
            MID, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(SRC),
            dependencies=[SelfDep(SRC)],
        ))
        node_a.metadata.define(MetadataDefinition(
            TOP, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(MID),
            dependencies=[SelfDep(MID)],
        ))
        node_a.metadata.define(MetadataDefinition(
            CHURN, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(SRC),
            dependencies=[SelfDep(SRC)],
        ))
        node_a.metadata.define(MetadataDefinition(
            FAST, Mechanism.PERIODIC, period=0.002, compute=lambda ctx: ctx.now,
        ))
        node_b.metadata.define(MetadataDefinition(
            REMOTE, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(TOP),
            dependencies=[NodeDep(node_a, TOP)],
        ))

        notify_total = 2 * ITERATIONS

        def notify(worker, i):
            node_a.metadata.notify_changed(SRC)

        def churn(worker, i):
            subscription = node_a.metadata.subscribe(CHURN)
            subscription.get()
            subscription.cancel()

        def read(worker, i):
            anchor_remote.get()

        with scheduler:
            anchor_remote = node_b.metadata.subscribe(REMOTE)
            anchor_fast = node_a.metadata.subscribe(FAST)
            check = RaceCheck(iterations=ITERATIONS, timeout=60.0, name="mixed")
            check.add(notify, threads=2)
            check.add(churn, threads=2)
            check.add(read, threads=2)
            check.run()

            fast_task = anchor_fast.handler._task
            anchor_fast.cancel()  # waits out any in-flight periodic refresh
            fired = scheduler.task_snapshot(fast_task)["fire_count"]
            anchor_remote.cancel()

        stats = system.stats()
        # Handler accounting balances exactly once everything is cancelled.
        assert stats["handlers_included"] == 0
        assert stats["handlers_created"] == stats["handlers_removed"]
        # Churn created fresh handlers whenever no other subscription was
        # live (overlapping subscribes share one handler, so the count is
        # below 2 x ITERATIONS — but far above the 6 base handlers).
        assert stats["handlers_created"] > 6
        assert stats["periodic_tasks"] == 0
        assert stats["pending"] == 0
        # Wave accounting: one wave per notify_changed, plus one per periodic
        # refresh that propagated.  At most one in-flight periodic refresh
        # can have been skipped by the removal flag at cancel time.
        assert notify_total + fired - 1 <= stats["waves"] <= notify_total + fired
        assert stats["errors"] == 0


class TestSchedulerCancelRace:
    """A task cancelled while (or just before) firing must never refresh
    after ``unregister`` / ``subscription.cancel()`` returns.

    The compute sleeps longer than the period, so a refresh is essentially
    always in flight when ``cancel()`` lands.  Pre-fix, ``unregister`` did
    not wait for in-flight work, so the refresh completed *after* cancel
    returned and this failed on every round; post-fix ``cancel()`` blocks
    until the in-flight refresh is done.
    """

    def test_no_fire_after_cancel_returns(self):
        clock = SystemClock()
        scheduler = ThreadedScheduler(clock, pool_size=4)
        system = system_from_env(
            clock, scheduler, lock_policy=FineGrainedLockPolicy()
        )
        owner = _attach_registry(system, "node")
        fires: list[int] = []
        fires_lock = threading.Lock()

        def record(ctx):
            # Sleep first: an in-flight refresh that survives cancel() will
            # record its fire only after cancel() has returned.  The wait
            # under the item lock is the point of the test, not a hazard.
            threading.Event().wait(0.005)  # analysis: ignore[LD003]
            with fires_lock:
                fires.append(1)
            return len(fires)

        owner.metadata.define(MetadataDefinition(
            FAST, Mechanism.PERIODIC, period=0.001, compute=record,
        ))
        with scheduler:
            for _ in range(25):
                subscription = owner.metadata.subscribe(FAST)
                # Let it fire at least once, racing cancel against the pool.
                threading.Event().wait(0.003)
                subscription.cancel()
                with fires_lock:
                    count_at_cancel = len(fires)
                threading.Event().wait(0.01)
                with fires_lock:
                    assert len(fires) == count_at_cancel, (
                        "periodic refresh fired after cancel() returned"
                    )
        assert scheduler.active_task_count() == 0
        assert system.included_handler_count == 0


class TestCachedPlanStressEquivalence:
    """The wave-plan cache must change cost, never accounting.

    An always-changing chain makes per-wave work deterministic (every wave
    refreshes the full chain), so the cached and uncached engines must
    produce *identical* counters under the same concurrent storm — and the
    cached engine must actually have served the storm from one plan.
    """

    DEPTH = 6

    def _storm(self, engine) -> dict:
        from repro.metadata.propagation import PropagationEngine  # noqa: F401

        clock = VirtualClock()
        system = MetadataSystem(
            clock,
            VirtualTimeScheduler(clock),
            lock_policy=FineGrainedLockPolicy(),
            propagation=engine,
        )
        owner = _attach_registry(system, "node")
        state = {"n": 0}
        state_lock = threading.Lock()

        def bump(ctx):
            with state_lock:
                state["n"] += 1
                return state["n"]

        owner.metadata.define(MetadataDefinition(SRC, Mechanism.ON_DEMAND, compute=bump))
        previous = SRC
        for i in range(self.DEPTH):
            key = MetadataKey(f"chain{i}")
            owner.metadata.define(MetadataDefinition(
                key, Mechanism.TRIGGERED,
                compute=lambda ctx, dep=previous: ctx.value(dep) + 1,
                dependencies=[SelfDep(previous)],
            ))
            previous = key
        anchor = owner.metadata.subscribe(previous)

        check = RaceCheck(iterations=ITERATIONS, timeout=60.0,
                          name="plan-cache-equivalence")
        check.add(
            lambda worker, i: owner.metadata.notify_changed(SRC),
            threads=THREADS, name="notify",
        )
        check.run()

        stats = engine.stats()
        anchor.cancel()
        return stats

    def test_identical_accounting_cached_vs_uncached(self):
        from repro.metadata.propagation import PropagationEngine

        # Coalescing off on both sides: merging depends on queue timing, so
        # only the cache dimension varies — the property under test.
        cached = self._storm(PropagationEngine(coalesce=False))
        uncached = self._storm(PropagationEngine(plan_cache=False,
                                                 coalesce=False))
        for key in ("waves", "refreshes", "suppressed", "errors"):
            assert cached[key] == uncached[key], (cached, uncached)
        assert cached["waves"] == THREADS * ITERATIONS
        assert cached["refreshes"] == THREADS * ITERATIONS * self.DEPTH
        assert cached["suppressed"] == 0
        assert cached["pending"] == 0
        # The storm ran off one memoized plan: built once, reused throughout.
        assert cached["plan_misses"] == 1
        assert cached["plan_hits"] == cached["waves"] - 1
        assert uncached["plan_hits"] == 0

    def test_coalescing_storm_keeps_exact_wave_accounting(self):
        """Default engine (coalescing on) under the same storm plus
        concurrent wiring churn: every notification is accounted exactly
        once, merged or not, while epoch bumps invalidate plans mid-storm."""
        from repro.metadata.propagation import PropagationEngine

        engine = PropagationEngine()
        clock = VirtualClock()
        system = MetadataSystem(
            clock,
            VirtualTimeScheduler(clock),
            lock_policy=FineGrainedLockPolicy(),
            propagation=engine,
        )
        owner = _attach_registry(system, "node")
        state = {"n": 0}
        state_lock = threading.Lock()

        def bump(ctx):
            with state_lock:
                state["n"] += 1
                return state["n"]

        owner.metadata.define(MetadataDefinition(SRC, Mechanism.ON_DEMAND, compute=bump))
        owner.metadata.define(MetadataDefinition(
            MID, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(SRC),
            dependencies=[SelfDep(SRC)],
        ))
        owner.metadata.define(MetadataDefinition(
            CHURN, Mechanism.TRIGGERED, compute=lambda ctx: ctx.value(SRC),
            dependencies=[SelfDep(SRC)],
        ))
        anchor = owner.metadata.subscribe(MID)

        def churn(worker, i):
            subscription = owner.metadata.subscribe(CHURN)
            subscription.get()
            subscription.cancel()

        check = RaceCheck(iterations=ITERATIONS, timeout=60.0,
                          name="coalesce-churn")
        check.add(
            lambda worker, i: owner.metadata.notify_changed(SRC),
            threads=THREADS, name="notify",
        )
        check.add(churn, threads=2, name="churn")
        check.run()

        stats = engine.stats()
        anchor.cancel()
        # Exact lost-wave accounting survives coalescing: each notification
        # is either its own drain or folded into a merged one, never both.
        assert stats["waves"] == THREADS * ITERATIONS
        single_drains = stats["drains"] - stats["merged_waves"]
        assert single_drains + stats["coalesced_sources"] == stats["waves"]
        assert stats["pending"] == 0
        assert stats["errors"] == 0
        # The churn threads bumped the topology epoch mid-storm, forcing
        # plan rebuilds — the cache invalidation path under real contention.
        assert stats["topology_epoch"] > 0
        assert stats["plan_misses"] >= 1
        assert system.included_handler_count == 0
