"""Smoke tests: every shipped example must run end-to-end.

Examples are part of the public deliverable; running them in CI keeps the
documentation honest.  Each test executes the example's ``main()`` with
stdout captured and asserts on a signature line of its output.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Metadata available at the join" in out
        assert "Handlers live after cancelling: 0" in out

    def test_monitoring_dashboard(self, capsys):
        out = run_example("monitoring_dashboard", capsys)
        assert "estimated CPU usage" in out
        assert "mean estimated/measured CPU ratio" in out
        assert "telemetry dashboard" in out
        assert "why did join/estimate.cpu_usage refresh?" in out

    def test_adaptive_resource_management(self, capsys):
        out = run_example("adaptive_resource_management", capsys)
        assert "shrink" in out
        assert "grow" in out

    def test_chain_scheduling(self, capsys):
        out = run_example("chain_scheduling", capsys)
        assert "chain saves" in out

    def test_load_shedding(self, capsys):
        out = run_example("load_shedding", capsys)
        assert "drop prob" in out
        assert "delivered" in out

    def test_plan_migration(self, capsys):
        out = run_example("plan_migration", capsys)
        assert "MIGRATE join" in out
        assert "recommendations issued: 2" in out

    def test_fault_tolerance(self, capsys):
        out = run_example("fault_tolerance", capsys)
        assert "fault-tolerant refresh walkthrough" in out
        assert "circuit=quarantined" in out
        assert "probe/net.rtt: quarantined, stale=True" in out
        assert "circuit=healthy" in out
        assert "skipped_poisoned=1" in out
        assert "why is probe/net.total_cost stale?" in out
        assert "telemetry dashboard" in out

    def test_deadlock_demo(self, capsys):
        out = run_example("deadlock_demo", capsys)
        # Runtime half: the AB/BA cycle is reported from the recording even
        # though the demo never actually deadlocked.
        assert "no deadlock occurred" in out
        assert "LD001" in out
        assert "lock-order cycle" in out
        assert "node:left" in out and "node:right" in out
        # Static half: the graph-under-item acquisition three calls deep.
        assert "LK007" in out
        assert "transitive lock-order inversion" in out
        assert "_register_globally" in out
        assert "codes raised: LD001, LK007" in out

    def test_metadata_explorer(self, capsys):
        out = run_example("metadata_explorer", capsys)
        assert "working set after two subscriptions" in out
        assert "handlers after cancelling: 0" in out
        # The healthy plan passes the static verifier; the deliberately
        # mis-wired variant is rejected with the Figure-5 code.
        healthy, _, miswired = out.partition(
            "== static analysis of a mis-wired variant ==")
        assert "static analysis of the healthy plan" in healthy
        assert "no findings" in healthy.split(
            "static analysis of the healthy plan ==")[1]
        assert "MD003" in miswired
        assert "demo.avg_output_rate" in miswired
